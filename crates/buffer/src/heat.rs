//! Server-side page heat from the Eq. 2 k-direction allocation (§V-A).
//!
//! The client-side prefetcher spends its block budget on the sectors a
//! single client is predicted to move into. [`MotionHeat`] is the same
//! idea promoted to the server: each connected session contributes its
//! own Eq. 2 allocation (smoothed direction probabilities →
//! [`allocate_directions`]), and a page's *heat* is the sum over
//! sessions of the allocation weight in the sector that page lies in,
//! attenuated by distance. The server's `PageCache` (mar-store) ranks
//! admission and eviction by this heat, so pages in front of moving
//! clients outlive pages behind them.
//!
//! Determinism: sessions live in a `BTreeMap`, so `heat_at` sums
//! contributions in session-id order; direction smoothing is a fixed
//! exponential moving average of sector votes with no time source.

use std::collections::BTreeMap;

use mar_geom::{Point2, Rect2, SectorPartition, Vector};

use crate::alloc::allocate_directions;

/// Weight a fresh movement observation carries against a session's
/// smoothed direction distribution. High enough to track a tour's turns
/// within a few ticks, low enough that one jittered step does not flip
/// the allocation.
const DIRECTION_ALPHA: f64 = 0.5;

#[derive(Debug, Clone)]
struct SessionMotion {
    pos: Point2,
    /// Smoothed probability per sector (sums to 1).
    probs: Vec<f64>,
    /// Eq. 2 allocation of the nominal budget across the sectors.
    alloc: Vec<usize>,
}

/// Aggregated per-session motion state mapping any point in the scene to
/// a scalar heat.
#[derive(Debug, Clone)]
pub struct MotionHeat {
    partition: SectorPartition,
    /// Nominal per-session budget Eq. 2 distributes across sectors. Only
    /// relative weights matter for victim ranking, so this is a fixed
    /// resolution knob, not a real block count.
    alloc_total: usize,
    /// Distance (in scene units) at which a contribution halves.
    scale: f64,
    sessions: BTreeMap<u64, SessionMotion>,
}

impl MotionHeat {
    /// Creates an empty heat field over `k` axis-centered sectors.
    /// `scale` is the distance at which a session's contribution halves
    /// (must be positive and finite).
    pub fn new(k: usize, alloc_total: usize, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Self {
            partition: SectorPartition::axis_centered(k),
            alloc_total,
            scale,
            sessions: BTreeMap::new(),
        }
    }

    /// The defaults the server uses: the paper's k = 4 compass sectors,
    /// a 64-unit nominal budget, and a half-heat distance of `scale`.
    pub fn server_default(scale: f64) -> Self {
        Self::new(4, 64, scale)
    }

    /// Records that `session` is now at `pos`. The first observation
    /// seeds a uniform direction distribution; each later one votes the
    /// movement's sector into the smoothed distribution and refreshes
    /// the session's Eq. 2 allocation.
    pub fn observe(&mut self, session: u64, pos: Point2) {
        let k = self.partition.k();
        match self.sessions.get_mut(&session) {
            None => {
                let probs = vec![1.0 / k as f64; k];
                let alloc = allocate_directions(self.alloc_total, &probs);
                self.sessions
                    .insert(session, SessionMotion { pos, probs, alloc });
            }
            Some(m) => {
                let delta = pos - m.pos;
                m.pos = pos;
                // A stationary tick carries no direction information.
                if let Some(s) = self.partition.sector_of(&delta) {
                    for p in m.probs.iter_mut() {
                        *p *= 1.0 - DIRECTION_ALPHA;
                    }
                    m.probs[s] += DIRECTION_ALPHA;
                    m.alloc = allocate_directions(self.alloc_total, &m.probs);
                }
            }
        }
    }

    /// Drops `session`'s contribution (client disconnected).
    pub fn forget(&mut self, session: u64) {
        self.sessions.remove(&session);
    }

    /// Tracked sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// One session's contribution for an offset `v` from its position:
    /// the Eq. 2 allocation weight of `v`'s sector, attenuated by
    /// distance. A zero offset (no sector) counts the full nominal
    /// budget — as hot as a contribution can be.
    fn contribution(&self, m: &SessionMotion, v: Vector<2>) -> f64 {
        let weight = match self.partition.sector_of(&v) {
            Some(s) => m.alloc[s] as f64,
            None => self.alloc_total as f64,
        };
        weight / (1.0 + v.norm() / self.scale)
    }

    /// Heat at `center`: the sum over sessions of the Eq. 2 allocation
    /// weight in `center`'s sector relative to the session, attenuated
    /// by distance. A point exactly at a session's position (no sector)
    /// counts the full nominal budget — it is as hot as a page can be.
    pub fn heat_at(&self, center: Point2) -> f64 {
        self.sessions
            .values()
            .map(|m| self.contribution(m, center - m.pos))
            .sum()
    }

    /// Heat of an axis-aligned region: each session contributes the heat
    /// at the point of `rect` *nearest* to it — a page is as hot as the
    /// hottest prediction it covers. A region containing a session's
    /// position counts that session's full nominal budget, which keeps an
    /// index's root and upper internal pages (their regions cover every
    /// client) resident ahead of leaf pages off to the side; for small
    /// leaf-sized regions the nearest point is effectively the center and
    /// the ranking stays directional.
    pub fn heat_rect(&self, rect: &Rect2) -> f64 {
        self.sessions
            .values()
            .map(|m| {
                let nearest = Point2::new([
                    m.pos[0].clamp(rect.lo[0], rect.hi[0]),
                    m.pos[1].clamp(rect.lo[1], rect.hi[1]),
                ]);
                self.contribution(m, nearest - m.pos)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new([x, y])
    }

    #[test]
    fn empty_field_is_cold() {
        let h = MotionHeat::server_default(10.0);
        assert_eq!(h.heat_at(p(3.0, 4.0)), 0.0);
    }

    #[test]
    fn heading_east_heats_the_east() {
        let mut h = MotionHeat::server_default(10.0);
        // Session 1 walks steadily east.
        for i in 0..8 {
            h.observe(1, p(i as f64, 0.0));
        }
        let ahead = h.heat_at(p(12.0, 0.0));
        let behind = h.heat_at(p(2.0, 0.0));
        assert!(
            ahead > behind,
            "east page must be hotter than the one behind: {ahead} vs {behind}"
        );
    }

    #[test]
    fn closer_pages_are_hotter() {
        let mut h = MotionHeat::server_default(10.0);
        for i in 0..4 {
            h.observe(7, p(i as f64, 0.0));
        }
        let near = h.heat_at(p(5.0, 0.0));
        let far = h.heat_at(p(50.0, 0.0));
        assert!(near > far, "distance must attenuate: {near} vs {far}");
    }

    #[test]
    fn forget_removes_contribution() {
        let mut h = MotionHeat::server_default(10.0);
        h.observe(1, p(0.0, 0.0));
        h.observe(2, p(1.0, 1.0));
        assert_eq!(h.session_count(), 2);
        h.forget(1);
        assert_eq!(h.session_count(), 1);
        h.forget(1); // idempotent
        assert_eq!(h.session_count(), 1);
    }

    #[test]
    fn containing_rect_is_maximally_hot() {
        let mut h = MotionHeat::server_default(10.0);
        for i in 0..8 {
            h.observe(1, p(i as f64, 0.0));
        }
        // The whole-space rect contains the session → full budget, hotter
        // than any rect strictly ahead, which in turn beats one behind.
        let root = Rect2::new(p(-100.0, -100.0), p(100.0, 100.0));
        let ahead = Rect2::new(p(12.0, -1.0), p(14.0, 1.0));
        let behind = Rect2::new(p(0.0, -1.0), p(2.0, 1.0));
        let (hr, ha, hb) = (
            h.heat_rect(&root),
            h.heat_rect(&ahead),
            h.heat_rect(&behind),
        );
        assert!(hr > ha, "containing rect must dominate: {hr} vs {ha}");
        assert!(ha > hb, "rect ahead must beat rect behind: {ha} vs {hb}");
        // A degenerate rect agrees with the point evaluation.
        let pt = p(12.0, 0.0);
        assert_eq!(h.heat_rect(&Rect2::new(pt, pt)), h.heat_at(pt));
    }

    #[test]
    fn heat_is_session_order_invariant() {
        // Two fields fed the same observations in different interleavings
        // agree everywhere (summation runs in BTreeMap session order).
        let mut a = MotionHeat::server_default(10.0);
        let mut b = MotionHeat::server_default(10.0);
        let obs = [(1u64, 0.0), (2u64, 5.0), (1u64, 1.0), (2u64, 4.0)];
        for (s, x) in obs {
            a.observe(s, p(x, 0.0));
        }
        for (s, x) in [(2u64, 5.0), (2u64, 4.0), (1u64, 0.0), (1u64, 1.0)] {
            b.observe(s, p(x, 0.0));
        }
        for probe in [p(0.0, 0.0), p(3.0, 2.0), p(-8.0, 1.0)] {
            assert_eq!(a.heat_at(probe), b.heat_at(probe));
        }
    }
}
