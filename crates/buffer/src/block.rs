//! The client's block cache with hit-rate and data-utilization accounting.
//!
//! Experiments report two metrics (Fig. 10): the **cache hit rate** — the
//! fraction of frame-block lookups served locally, a proxy for latency —
//! and **data utilization** — the fraction of prefetched blocks that were
//! subsequently used, a proxy for wasted wireless bandwidth. Both are
//! tracked here, at block granularity, exactly as defined.

use mar_geom::BlockId;
use mar_store::RecencyIndex;
use std::collections::BTreeMap;

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Frame-block lookups.
    pub lookups: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Blocks installed by prefetching.
    pub prefetched: u64,
    /// Prefetched blocks that were later touched by a frame.
    pub prefetched_used: u64,
    /// Blocks installed directly by demand misses.
    pub demand_fetched: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (1.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of prefetched blocks that were used (1.0 when nothing was
    /// prefetched).
    pub fn utilization(&self) -> f64 {
        if self.prefetched == 0 {
            1.0
        } else {
            self.prefetched_used as f64 / self.prefetched as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Lowest wavelet magnitude this block is cached down to (0.0 = full
    /// resolution). A lookup needing `w ≥ slot.w_min` is a hit.
    w_min: f64,
    /// Whether the block entered via prefetch and has not been used yet.
    pending_use: bool,
    /// Logical recency stamp: the cache's operation counter at the last
    /// install or hit. Capacity-shrink eviction drops the smallest stamp
    /// (the least-recently-used block) first. Stamps are unique — the
    /// counter advances on every touch — so recency order is total and
    /// deterministic.
    touched: u64,
}

/// A capacity-bounded cache of grid blocks, each held at some resolution.
#[derive(Debug, Clone)]
pub struct BlockCache {
    capacity: usize,
    // BTreeMap, not HashMap: eviction picks victims by iteration
    // order, and hash order differs per map instance, which made two
    // identical runs disagree. Key order is stable.
    slots: BTreeMap<BlockId, Slot>,
    /// Workspace-shared recency structure: `touched` stamp → block.
    /// Stamps are unique (the clock advances on every touch), so recency
    /// is a total order and the LRU victim pops off in O(log n) — a
    /// capacity shrink no longer scans all n slots per evicted block.
    recency: RecencyIndex<BlockId>,
    stats: CacheStats,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            slots: BTreeMap::new(),
            recency: RecencyIndex::new(),
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of blocks held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The next recency stamp (each call advances the logical clock).
    fn tick(&mut self) -> u64 {
        self.recency.tick()
    }

    /// Changes the capacity (the multiresolution policy grows the block
    /// budget at speed); on shrink, excess blocks are evicted in recency
    /// order — least-recently-used first.
    ///
    /// Regression (ISSUE 6): this used to evict via `pop_first` on the
    /// *block-id* map, so a capacity shrink at speed dropped hot blocks
    /// the client had just touched and skewed the Eq. 2 buffer-hit
    /// metrics (pinned by `set_capacity_evicts_lru_not_smallest_key`).
    /// Victims now come off the recency index: O(log n) per eviction
    /// rather than a full-map scan.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.slots.len() > self.capacity {
            match self.recency.pop_lru() {
                Some((_, b)) => {
                    self.slots.remove(&b);
                }
                None => break,
            }
        }
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Looks up the blocks of one query frame at the required resolution
    /// (`w_min` = lowest magnitude needed). Returns the blocks that missed
    /// (absent, or cached too coarse). Hit blocks are marked used.
    pub fn access(&mut self, frame_blocks: &[BlockId], w_min: f64) -> Vec<BlockId> {
        let mut misses = Vec::new();
        self.access_into(frame_blocks, w_min, &mut misses);
        misses
    }

    /// Like [`BlockCache::access`], but reuses `misses` (cleared first) so
    /// per-tick simulation loops allocate nothing in steady state.
    pub fn access_into(&mut self, frame_blocks: &[BlockId], w_min: f64, misses: &mut Vec<BlockId>) {
        misses.clear();
        for b in frame_blocks {
            self.stats.lookups += 1;
            let stamp = self.tick();
            match self.slots.get_mut(b) {
                Some(slot) if slot.w_min <= w_min => {
                    self.stats.hits += 1;
                    self.recency.remove(slot.touched);
                    self.recency.insert(stamp, *b);
                    slot.touched = stamp;
                    if slot.pending_use {
                        slot.pending_use = false;
                        self.stats.prefetched_used += 1;
                    }
                }
                _ => misses.push(*b),
            }
        }
    }

    /// Installs blocks fetched on demand (they are "used" by definition).
    /// Demand data is never dropped: capacity is enforced by evicting
    /// prefetched blocks first.
    pub fn install_demand(&mut self, blocks: &[BlockId], w_min: f64) {
        for b in blocks {
            let touched = self.tick();
            let prev = self.slots.insert(
                *b,
                Slot {
                    w_min,
                    pending_use: false,
                    touched,
                },
            );
            if let Some(old) = prev {
                self.recency.remove(old.touched);
            } else {
                self.stats.demand_fetched += 1;
            }
            self.recency.insert(touched, *b);
            self.enforce_capacity(b);
        }
    }

    /// Installs a prefetched block at the given resolution. Returns false
    /// (and does nothing) when the block is already cached at sufficient
    /// resolution or the cache cannot make room without evicting demand
    /// data newer than this prefetch.
    pub fn install_prefetch(&mut self, block: BlockId, w_min: f64) -> bool {
        if let Some(slot) = self.slots.get(&block) {
            if slot.w_min <= w_min {
                return false;
            }
        }
        let touched = self.tick();
        let prev = self.slots.insert(
            block,
            Slot {
                w_min,
                pending_use: true,
                touched,
            },
        );
        if let Some(old) = prev {
            self.recency.remove(old.touched);
        }
        self.recency.insert(touched, block);
        self.stats.prefetched += 1;
        self.enforce_capacity(&block);
        true
    }

    /// True when `block` is cached at resolution `w_min` or finer.
    pub fn contains(&self, block: &BlockId, w_min: f64) -> bool {
        self.slots
            .get(block)
            .map(|s| s.w_min <= w_min)
            .unwrap_or(false)
    }

    /// Evicts every cached block not in `keep` (the prefetcher replaces the
    /// buffered region wholesale each replanning tick).
    pub fn retain(&mut self, keep: impl Fn(&BlockId) -> bool) {
        self.slots.retain(|b, _| keep(b));
        self.recency.retain(&keep);
    }

    fn enforce_capacity(&mut self, just_inserted: &BlockId) {
        while self.slots.len() > self.capacity {
            // Prefer evicting an unused prefetched block; never the block
            // just inserted.
            let victim = self
                .slots
                .iter()
                .filter(|(b, _)| *b != just_inserted)
                .min_by_key(|(_, s)| if s.pending_use { 0 } else { 1 })
                .map(|(b, s)| (*b, s.touched));
            match victim {
                Some((b, stamp)) => {
                    self.slots.remove(&b);
                    self.recency.remove(stamp);
                }
                None => break,
            }
        }
    }

    /// Test hook: the recency index must mirror the slot map exactly —
    /// one entry per slot, keyed by that slot's current stamp.
    #[cfg(test)]
    fn assert_lru_mirrors_slots(&self) {
        assert_eq!(self.recency.len(), self.slots.len(), "index size drifted");
        for (stamp, block) in self.recency.iter() {
            let slot = self.slots.get(block).expect("index points at a live slot");
            assert_eq!(slot.touched, stamp, "index holds a stale stamp");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: i64, y: i64) -> BlockId {
        BlockId::new(x, y)
    }

    #[test]
    fn misses_then_hits() {
        let mut c = BlockCache::new(8);
        let frame = [b(0, 0), b(0, 1)];
        let misses = c.access(&frame, 0.0);
        assert_eq!(misses.len(), 2);
        c.install_demand(&misses, 0.0);
        let misses2 = c.access(&frame, 0.0);
        assert!(misses2.is_empty());
        assert_eq!(c.stats().lookups, 4);
        assert_eq!(c.stats().hits, 2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resolution_mismatch_is_a_miss() {
        let mut c = BlockCache::new(8);
        // Cached coarse (w >= 0.5 only)…
        c.install_demand(&[b(0, 0)], 0.5);
        // …but the client now needs full detail.
        let misses = c.access(&[b(0, 0)], 0.0);
        assert_eq!(misses, vec![b(0, 0)]);
        // Needing the same or coarser is a hit.
        assert!(c.access(&[b(0, 0)], 0.5).is_empty());
        assert!(c.access(&[b(0, 0)], 0.8).is_empty());
    }

    #[test]
    fn utilization_counts_used_prefetches_once() {
        let mut c = BlockCache::new(8);
        assert!(c.install_prefetch(b(1, 1), 0.0));
        assert!(c.install_prefetch(b(2, 2), 0.0));
        // Touch one of them twice.
        c.access(&[b(1, 1)], 0.0);
        c.access(&[b(1, 1)], 0.0);
        let s = c.stats();
        assert_eq!(s.prefetched, 2);
        assert_eq!(s.prefetched_used, 1);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefetch_respects_existing_finer_data() {
        let mut c = BlockCache::new(8);
        c.install_demand(&[b(0, 0)], 0.0);
        assert!(
            !c.install_prefetch(b(0, 0), 0.5),
            "coarser prefetch is useless"
        );
        assert_eq!(c.stats().prefetched, 0);
    }

    #[test]
    fn capacity_evicts_unused_prefetches_first() {
        let mut c = BlockCache::new(2);
        c.install_demand(&[b(0, 0)], 0.0);
        c.install_prefetch(b(1, 1), 0.0);
        c.install_demand(&[b(2, 2)], 0.0); // must evict the prefetch
        assert!(c.contains(&b(0, 0), 0.0));
        assert!(c.contains(&b(2, 2), 0.0));
        assert!(!c.contains(&b(1, 1), 0.0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn retain_evicts_everything_else() {
        let mut c = BlockCache::new(8);
        c.install_demand(&[b(0, 0), b(1, 1), b(2, 2)], 0.0);
        c.retain(|blk| blk.ix <= 1);
        assert_eq!(c.len(), 2);
        assert!(!c.contains(&b(2, 2), 0.0));
    }

    #[test]
    fn set_capacity_shrinks() {
        let mut c = BlockCache::new(8);
        c.install_demand(&[b(0, 0), b(1, 1), b(2, 2), b(3, 3)], 0.0);
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn set_capacity_evicts_lru_not_smallest_key() {
        // Regression (ISSUE 6): shrink eviction used `pop_first`, dropping
        // the smallest *block id* — here the hot block (0,0) the frame just
        // touched — instead of the least-recently-used entry.
        let mut c = BlockCache::new(8);
        c.install_demand(&[b(0, 0), b(1, 1), b(2, 2), b(3, 3)], 0.0);
        // Touch the smallest-keyed block last: it is now the hottest.
        assert!(c.access(&[b(0, 0)], 0.0).is_empty());
        c.set_capacity(2);
        assert!(
            c.contains(&b(0, 0), 0.0),
            "the just-touched block must survive a capacity shrink"
        );
        assert!(c.contains(&b(3, 3), 0.0), "most recent install survives");
        assert!(!c.contains(&b(1, 1), 0.0), "LRU entry is evicted");
        assert!(!c.contains(&b(2, 2), 0.0), "LRU entry is evicted");
    }

    #[test]
    fn set_capacity_recency_follows_every_touch_kind() {
        // Hits, demand installs and prefetch installs all refresh recency.
        let mut c = BlockCache::new(8);
        c.install_demand(&[b(5, 5)], 0.0); // oldest
        assert!(c.install_prefetch(b(6, 6), 0.0));
        c.install_demand(&[b(7, 7)], 0.0);
        assert!(c.access(&[b(5, 5)], 0.0).is_empty()); // re-heats (5,5)
        c.set_capacity(2);
        assert!(c.contains(&b(5, 5), 0.0), "hit refreshed recency");
        assert!(c.contains(&b(7, 7), 0.0));
        assert!(!c.contains(&b(6, 6), 0.0), "coldest prefetch evicted");
    }

    #[test]
    fn recency_index_stays_consistent_through_churn() {
        // REVIEW regression: shrink eviction now pops the recency index
        // instead of scanning all slots (O(n·k) on a large shrink). The
        // index must mirror the slot map through every mutation kind —
        // hits, demand installs, prefetch installs, re-installs at a new
        // resolution, retain sweeps, and capacity churn.
        let mut c = BlockCache::new(16);
        for i in 0..16 {
            c.install_demand(&[b(i, 0)], 0.5);
        }
        c.assert_lru_mirrors_slots();
        // Re-install half at finer resolution (replaces live slots).
        for i in 0..8 {
            c.install_demand(&[b(i, 0)], 0.0);
        }
        c.assert_lru_mirrors_slots();
        // Prefetch over a live coarse slot and into fresh blocks, with
        // enforce_capacity evictions along the way.
        assert!(c.install_prefetch(b(8, 0), 0.0));
        for i in 0..4 {
            c.install_prefetch(b(i, 1), 0.0);
        }
        c.assert_lru_mirrors_slots();
        // Hits refresh stamps (remove+reinsert in the index).
        assert!(c.access(&[b(0, 0), b(1, 0)], 0.0).is_empty());
        c.assert_lru_mirrors_slots();
        // Wholesale retain sweep.
        c.retain(|blk| blk.iy == 0);
        c.assert_lru_mirrors_slots();
        // Shrink far below occupancy: victims come off the index, and the
        // two just-touched blocks survive.
        c.set_capacity(2);
        c.assert_lru_mirrors_slots();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&b(0, 0), 0.0));
        assert!(c.contains(&b(1, 0), 0.0));
        // Growing back and refilling keeps the mirror exact.
        c.set_capacity(4);
        c.install_demand(&[b(9, 0), b(10, 0), b(11, 0)], 0.0);
        c.assert_lru_mirrors_slots();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        assert_eq!(s.utilization(), 1.0);
    }
}
