//! # mar-buffer — motion-aware buffer management (§V)
//!
//! The client holds a limited buffer of grid *blocks*. Latency is paid on
//! every cache miss (Eq. 1), so the buffer manager's job is to pre-fetch
//! the blocks the client is most likely to visit — maximising the *average
//! residence time* inside the buffered region — while not wasting the
//! wireless link on blocks that will never be used (the *data utilization*
//! metric of Fig. 10(b)).
//!
//! Components, mapping one-to-one onto the paper:
//! * [`residence`] — the 1-D pre-fetching model of de Nitto Personè et al.
//!   \[15\]: gambler's-ruin expected residence time and the closed-form
//!   optimal split point `n_opt` (Eq. 2).
//! * [`alloc`] — the recursive extension of Eq. 2 to `k` directions
//!   (§V-A): probabilities are halved group-wise, Eq. 2 splits the buffer
//!   between the halves, and the recursion bottoms out at single
//!   directions. The optional ordering search (the paper's `k!` step,
//!   which it found unnecessary) is provided for the ablation bench.
//! * [`block`] — the block cache with hit/miss/utilization accounting.
//! * [`prefetch`] — the motion-aware prefetcher: Kalman/RLS block
//!   probabilities → direction probabilities → per-direction allocation →
//!   concrete block pick; plus the paper's naive equal-probability
//!   baseline.
//! * [`lru`] — the plain LRU cache used by the end-to-end naive system of
//!   §VII-E.
//! * [`multires`] — the speed-scaled resolution policy: "a client moving
//!   at higher speeds buffers more objects with lower resolutions".
//! * [`heat`] — Eq. 2 promoted to the server: per-session direction
//!   allocations aggregated into a scalar page *heat* that the
//!   out-of-core `PageCache` (mar-store) ranks eviction by.
//!
//! All recency bookkeeping (here and in mar-store's `PageCache`) shares
//! one structure, `mar_store::RecencyIndex`, re-exported below.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod block;
pub mod heat;
pub mod lru;
pub mod multires;
pub mod prefetch;
pub mod residence;

pub use alloc::{allocate_directions, best_ordering_allocation};
pub use block::{BlockCache, CacheStats};
pub use heat::MotionHeat;
pub use lru::LruCache;
pub use mar_store::RecencyIndex;
pub use multires::MultiresPolicy;
pub use prefetch::{
    AllocationStrategy, MotionAwarePrefetcher, NaivePrefetcher, PrefetchContext, Prefetcher,
};
pub use residence::{expected_residence, n_opt, optimal_split};
