//! The speed-scaled buffering policy (§V, final paragraph): "a client
//! moving at higher speeds buffers more objects with lower resolutions
//! than that of a slowly moving client."
//!
//! The policy maps the client's speed to the resolution at which blocks
//! are prefetched, and — because coarser blocks carry fewer bytes — to a
//! larger block budget for the same byte-sized buffer.

/// The multiresolution buffering policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiresPolicy {
    /// Buffer capacity in bytes (the 16–128 KB of Fig. 10).
    pub buffer_bytes: f64,
    /// When `false`, blocks are always buffered at full resolution (the
    /// non-multires ablation).
    pub speed_scaled: bool,
    /// How much finer than the instantaneous demand band blocks are
    /// buffered (`w_buffer = speed − margin`). Buffering exactly at the
    /// demand band would turn every small speed fluctuation into a
    /// resolution miss; the margin absorbs jitter and brief slowdowns at
    /// the price of more bytes per block.
    pub resolution_margin: f64,
}

impl MultiresPolicy {
    /// Creates a speed-scaled policy with the default margin.
    pub fn new(buffer_bytes: f64) -> Self {
        assert!(buffer_bytes > 0.0);
        Self {
            buffer_bytes,
            speed_scaled: true,
            resolution_margin: 0.35,
        }
    }

    /// A full-resolution-only policy with the same byte budget.
    pub fn full_resolution(buffer_bytes: f64) -> Self {
        Self {
            buffer_bytes,
            speed_scaled: false,
            resolution_margin: 0.0,
        }
    }

    /// The lowest wavelet magnitude worth buffering at the given
    /// normalised speed: a margin finer than the retrieval band, so the
    /// cache keeps serving through speed jitter.
    pub fn buffer_w_min(&self, speed: f64) -> f64 {
        if self.speed_scaled {
            (speed - self.resolution_margin).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// How many blocks fit, given a callback reporting the average bytes
    /// one block costs when filtered to `w ≥ w_min`. At least 1.
    pub fn block_budget(&self, speed: f64, bytes_per_block: impl Fn(f64) -> f64) -> usize {
        let w = self.buffer_w_min(speed);
        let per_block = bytes_per_block(w).max(1.0);
        ((self.buffer_bytes / per_block).floor() as usize).max(1)
    }

    /// [`Self::buffer_w_min`] under link degradation: the resilient
    /// protocol's coarsening shift (`degrade_w = degrade_step × level`)
    /// applies to the prefetch band exactly as it does to the demand band,
    /// so a congested link prefetches coarser blocks instead of stalling.
    pub fn buffer_w_min_degraded(&self, speed: f64, degrade_w: f64) -> f64 {
        (self.buffer_w_min(speed) + degrade_w.max(0.0)).clamp(0.0, 1.0)
    }

    /// [`Self::block_budget`] under link degradation: coarser blocks carry
    /// fewer bytes, so the same byte buffer covers *more* territory — the
    /// degradation trade is fidelity for coverage, never fewer blocks.
    pub fn block_budget_degraded(
        &self,
        speed: f64,
        degrade_w: f64,
        bytes_per_block: impl Fn(f64) -> f64,
    ) -> usize {
        let w = self.buffer_w_min_degraded(speed, degrade_w);
        let per_block = bytes_per_block(w).max(1.0);
        ((self.buffer_bytes / per_block).floor() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy cost curve: full resolution costs 4 KB/block, coarsest 400 B.
    fn cost(w_min: f64) -> f64 {
        4096.0 * (1.0 - 0.9 * w_min)
    }

    #[test]
    fn faster_clients_fit_more_blocks() {
        let p = MultiresPolicy::new(64.0 * 1024.0);
        let slow = p.block_budget(0.0, cost);
        let fast = p.block_budget(1.0, cost);
        assert_eq!(slow, 16);
        assert!(fast > 2 * slow, "slow {slow} fast {fast}");
    }

    #[test]
    fn margin_buffers_finer_than_demand() {
        let p = MultiresPolicy::new(64.0 * 1024.0);
        assert!(p.buffer_w_min(0.5) < 0.5);
        assert!((p.buffer_w_min(0.5) - 0.15).abs() < 1e-12);
        // Below the margin the buffer holds full resolution.
        assert_eq!(p.buffer_w_min(0.2), 0.0);
    }

    #[test]
    fn full_resolution_policy_ignores_speed() {
        let p = MultiresPolicy::full_resolution(64.0 * 1024.0);
        assert_eq!(p.buffer_w_min(0.9), 0.0);
        assert_eq!(p.block_budget(0.0, cost), p.block_budget(1.0, cost));
    }

    #[test]
    fn bigger_buffers_fit_more_blocks() {
        let small = MultiresPolicy::new(16.0 * 1024.0);
        let big = MultiresPolicy::new(128.0 * 1024.0);
        assert!(big.block_budget(0.5, cost) > small.block_budget(0.5, cost));
    }

    #[test]
    fn budget_is_at_least_one() {
        let p = MultiresPolicy::new(1.0);
        assert_eq!(p.block_budget(0.0, cost), 1);
    }

    #[test]
    fn degradation_coarsens_and_widens() {
        let p = MultiresPolicy::new(64.0 * 1024.0);
        // No degradation: identical to the plain policy.
        assert_eq!(p.buffer_w_min_degraded(0.5, 0.0), p.buffer_w_min(0.5));
        assert_eq!(
            p.block_budget_degraded(0.5, 0.0, cost),
            p.block_budget(0.5, cost)
        );
        // Degraded: coarser floor, more blocks for the same bytes.
        assert!(p.buffer_w_min_degraded(0.5, 0.3) > p.buffer_w_min(0.5));
        assert!(p.block_budget_degraded(0.5, 0.3, cost) > p.block_budget(0.5, cost));
        // Saturates at the top of the band; negative shifts are ignored.
        assert_eq!(p.buffer_w_min_degraded(0.9, 5.0), 1.0);
        assert_eq!(p.buffer_w_min_degraded(0.5, -1.0), p.buffer_w_min(0.5));
        // The full-resolution ablation degrades too: its floor rises from 0.
        let f = MultiresPolicy::full_resolution(64.0 * 1024.0);
        assert!((f.buffer_w_min_degraded(0.9, 0.3) - 0.3).abs() < 1e-12);
    }
}
