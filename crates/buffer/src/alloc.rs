//! Recursive k-direction buffer allocation (§V-A).
//!
//! Given direction probabilities `p_1 … p_k` and a buffer of `total`
//! blocks, the paper halves the directions into two groups, applies Eq. 2
//! to split the buffer between the groups, and recurses into each half
//! until single directions remain. Different *orderings* of the `k`
//! directions can give (slightly) different allocations; the paper tried
//! all `k!` and found the effect negligible — [`best_ordering_allocation`]
//! implements that exhaustive step for the ablation benchmark, scoring
//! orderings by a deterministic random-walk residence simulation.

use crate::residence::optimal_split;

/// Allocates `total` blocks across `k` directions with the given
/// probabilities (need not be normalised), using the paper's recursive
/// halving. Returns one block count per direction; counts sum to `total`.
///
/// ```
/// use mar_buffer::allocate_directions;
/// // A client almost certainly continuing east gets most of the buffer
/// // placed in the east sector.
/// let alloc = allocate_directions(20, &[0.8, 0.1, 0.05, 0.05]);
/// assert_eq!(alloc.iter().sum::<usize>(), 20);
/// assert!(alloc[0] > alloc[1] + alloc[2] + alloc[3]);
/// ```
pub fn allocate_directions(total: usize, probs: &[f64]) -> Vec<usize> {
    assert!(!probs.is_empty(), "need at least one direction");
    assert!(
        probs.iter().all(|p| *p >= 0.0 && p.is_finite()),
        "probabilities must be non-negative and finite"
    );
    let mut out = vec![0usize; probs.len()];
    let idx: Vec<usize> = (0..probs.len()).collect();
    recurse(total, probs, &idx, &mut out);
    debug_assert_eq!(out.iter().sum::<usize>(), total);
    out
}

fn recurse(total: usize, probs: &[f64], group: &[usize], out: &mut [usize]) {
    match group.len() {
        0 => {}
        1 => out[group[0]] = total,
        _ => {
            let mid = group.len() / 2;
            let (left, right) = group.split_at(mid);
            let p_l: f64 = left.iter().map(|&i| probs[i]).sum();
            let p_r: f64 = right.iter().map(|&i| probs[i]).sum();
            let (n_l, n_r) = if p_l + p_r <= 0.0 {
                // No information: split evenly.
                (total / 2, total - total / 2)
            } else {
                optimal_split(total, p_l, p_r)
            };
            recurse(n_l, probs, left, out);
            recurse(n_r, probs, right, out);
        }
    }
}

/// Tries every ordering (permutation) of the directions, allocates under
/// each, scores the resulting allocation with a deterministic 2-D
/// random-walk residence simulation, and returns the best allocation (in
/// the *original* direction order) together with its score.
///
/// `k` is capped at 6 (720 permutations) — beyond that the paper's own
/// conclusion ("this step can be omitted") applies with force.
pub fn best_ordering_allocation(total: usize, probs: &[f64]) -> (Vec<usize>, f64) {
    let k = probs.len();
    assert!(
        (1..=6).contains(&k),
        "ordering search supports 1..=6 directions"
    );
    let mut perm: Vec<usize> = (0..k).collect();
    let mut best_alloc = allocate_directions(total, probs);
    let mut best_score = estimate_residence(&best_alloc, probs);
    permute(&mut perm, 0, &mut |p: &[usize]| {
        let permuted_probs: Vec<f64> = p.iter().map(|&i| probs[i]).collect();
        let alloc_perm = allocate_directions(total, &permuted_probs);
        // Map back to original direction order.
        let mut alloc = vec![0usize; k];
        for (slot, &dir) in p.iter().enumerate() {
            alloc[dir] = alloc_perm[slot];
        }
        let score = estimate_residence(&alloc, probs);
        if score > best_score {
            best_score = score;
            best_alloc = alloc;
        }
    });
    (best_alloc, best_score)
}

fn permute(items: &mut Vec<usize>, start: usize, f: &mut impl FnMut(&[usize])) {
    if start == items.len() {
        f(items);
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, f);
        items.swap(start, i);
    }
}

/// Deterministic estimate of the expected residence time of an allocation:
/// a client repeatedly steps into direction `i` with probability `p_i`; it
/// leaves the buffered region once its net excursion in some direction
/// exceeds that direction's allocation. Averaged over a fixed trial count
/// with a splitmix64 stream — no external RNG state, fully reproducible.
pub fn estimate_residence(alloc: &[usize], probs: &[f64]) -> f64 {
    let k = alloc.len();
    assert_eq!(k, probs.len());
    let total_p: f64 = probs.iter().sum();
    if total_p <= 0.0 {
        return 0.0;
    }
    let trials = 256;
    let max_steps = 10_000;
    let mut rng_state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        (rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut total_time = 0u64;
    for _ in 0..trials {
        // Net excursion per direction; opposite directions cancel when the
        // partition has an even count (directions i and i+k/2 oppose).
        let mut pos = vec![0i64; k];
        let mut steps = 0u64;
        'walk: while steps < max_steps {
            steps += 1;
            let mut pick = next() * total_p;
            let mut dir = 0;
            for (i, p) in probs.iter().enumerate() {
                if pick < *p {
                    dir = i;
                    break;
                }
                pick -= p;
                dir = i;
            }
            pos[dir] += 1;
            if k.is_multiple_of(2) {
                let opposite = (dir + k / 2) % k;
                pos[opposite] -= 1;
            }
            if pos[dir] > alloc[dir] as i64 {
                break 'walk;
            }
        }
        total_time += steps;
    }
    total_time as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_sums_to_total() {
        for total in [0usize, 1, 7, 32, 100] {
            for probs in [
                vec![0.25, 0.25, 0.25, 0.25],
                vec![0.7, 0.1, 0.1, 0.1],
                vec![0.5, 0.3, 0.2],
                vec![1.0],
                vec![0.0, 0.0, 1.0, 0.0],
            ] {
                let a = allocate_directions(total, &probs);
                assert_eq!(a.iter().sum::<usize>(), total, "{probs:?}");
            }
        }
    }

    #[test]
    fn uniform_probs_allocate_evenly() {
        let a = allocate_directions(40, &[0.25; 4]);
        for &n in &a {
            assert!((9..=11).contains(&n), "{a:?}");
        }
    }

    #[test]
    fn dominant_direction_gets_most_blocks() {
        let a = allocate_directions(40, &[0.85, 0.05, 0.05, 0.05]);
        assert!(a[0] > a[1] + a[2] + a[3], "{a:?}");
        assert!(a[0] >= 25, "{a:?}");
    }

    #[test]
    fn zero_probability_direction_gets_nothing_much() {
        let a = allocate_directions(30, &[0.5, 0.5, 0.0, 0.0]);
        assert!(a[2] + a[3] <= 2, "{a:?}");
    }

    #[test]
    fn all_zero_probs_fall_back_to_even() {
        let a = allocate_directions(16, &[0.0; 4]);
        assert_eq!(a.iter().sum::<usize>(), 16);
        for &n in &a {
            assert!((3..=5).contains(&n), "{a:?}");
        }
    }

    #[test]
    fn ordering_search_never_worse_than_default() {
        for probs in [
            vec![0.4, 0.3, 0.2, 0.1],
            vec![0.25; 4],
            vec![0.6, 0.2, 0.15, 0.05],
        ] {
            let default_alloc = allocate_directions(24, &probs);
            let default_score = estimate_residence(&default_alloc, &probs);
            let (_, best_score) = best_ordering_allocation(24, &probs);
            assert!(best_score >= default_score);
        }
    }

    #[test]
    fn ordering_effect_is_small() {
        // The paper: "the ordering only slightly affects the average
        // residence time". Verify the gap is bounded.
        let probs = vec![0.4, 0.25, 0.2, 0.15];
        let default_alloc = allocate_directions(24, &probs);
        let default_score = estimate_residence(&default_alloc, &probs);
        let (_, best_score) = best_ordering_allocation(24, &probs);
        assert!(
            best_score <= default_score * 1.6 + 10.0,
            "ordering changed residence drastically: {default_score} -> {best_score}"
        );
    }

    #[test]
    fn residence_estimate_prefers_matched_allocation() {
        // Allocating along the drift must beat allocating against it.
        let probs = [0.7, 0.1, 0.1, 0.1];
        let matched = [20, 2, 2, 2];
        let inverted = [2, 2, 20, 2];
        assert!(estimate_residence(&matched, &probs) > estimate_residence(&inverted, &probs));
    }
}
