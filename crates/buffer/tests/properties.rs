//! Property tests for the buffer-management mathematics and the block
//! cache's bookkeeping.

use mar_buffer::{allocate_directions, expected_residence, n_opt, BlockCache};
use mar_geom::BlockId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 2's optimum never loses meaningfully against brute force.
    #[test]
    fn n_opt_is_near_optimal(a in 3u32..60, pl in 0.01f64..0.99) {
        let pr = 1.0 - pl;
        let z = n_opt(a, pl, pr);
        prop_assert!((1.0..=(a as f64 - 1.0)).contains(&z));
        let zi = (z.round() as u32).clamp(1, a - 1);
        let t_analytic = expected_residence(a, zi, pl, pr);
        let t_best = (1..a)
            .map(|n| expected_residence(a, n, pl, pr))
            .fold(0.0f64, f64::max);
        prop_assert!(
            t_analytic >= 0.95 * t_best,
            "a={a} pl={pl}: {t_analytic} vs best {t_best}"
        );
    }

    /// Residence time is positive and bounded by the symmetric maximum.
    #[test]
    fn residence_bounds(a in 3u32..50, n in 1u32..49, pl in 0.01f64..0.99) {
        prop_assume!(n < a);
        let t = expected_residence(a, n, pl, 1.0 - pl);
        prop_assert!(t > 0.0);
        let t_sym_max = (a as f64 / 2.0).powi(2);
        prop_assert!(t <= t_sym_max + 1e-9, "t={t} exceeds {t_sym_max}");
    }

    /// Allocation always partitions the budget, for any probability shape.
    #[test]
    fn allocation_partitions(
        total in 0usize..200,
        probs in prop::collection::vec(0.0f64..10.0, 1..12),
    ) {
        let alloc = allocate_directions(total, &probs);
        prop_assert_eq!(alloc.len(), probs.len());
        prop_assert_eq!(alloc.iter().sum::<usize>(), total);
    }

    /// A strongly dominant direction always receives the largest share.
    #[test]
    fn dominant_direction_not_starved(
        total in 8usize..100,
        dominant in 0usize..4,
    ) {
        let mut probs = vec![0.05; 4];
        probs[dominant] = 0.85;
        let alloc = allocate_directions(total, &probs);
        let max_alloc = *alloc.iter().max().unwrap();
        prop_assert_eq!(
            alloc[dominant], max_alloc,
            "dominant dir {} got {:?}", dominant, alloc
        );
    }

    /// Cache bookkeeping invariants under arbitrary op traces.
    #[test]
    fn cache_stats_invariants(
        ops in prop::collection::vec((0u8..4, 0i64..6, 0i64..6, 0.0f64..1.0), 1..200),
        cap in 1usize..20,
    ) {
        let mut c = BlockCache::new(cap);
        for (op, x, y, w) in ops {
            let b = BlockId::new(x, y);
            match op {
                0 => {
                    c.access(&[b], w);
                }
                1 => c.install_demand(&[b], w),
                2 => {
                    c.install_prefetch(b, w);
                }
                _ => c.retain(|blk| blk.ix != x),
            }
            prop_assert!(c.len() <= cap.max(1) + 1, "len {} cap {cap}", c.len());
            let s = c.stats();
            prop_assert!(s.hits <= s.lookups);
            prop_assert!(s.prefetched_used <= s.prefetched);
        }
    }
}
