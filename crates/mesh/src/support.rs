//! Wavelet support regions (§VI-A).
//!
//! The *support region* of a wavelet coefficient is the part of the surface
//! the coefficient influences during reconstruction: the union of the faces
//! of the finer mesh `Mʲ⁺¹` incident to the inserted vertex (the paper's
//! polygon `(1, 4, 2, 5, 6)` for vertex 4 of Figure 1(c)). The efficient
//! index of §VI-B stores each coefficient under the *minimum bounding box*
//! of its support region, so a window query returns exactly the
//! coefficients that contribute detail anywhere inside the window — no
//! second "neighbouring vertices" round trip.

use crate::wavelet::WaveletMesh;
use mar_geom::{Rect2, Rect3};
use std::collections::BTreeSet;

/// The support region of one wavelet coefficient, reduced to what the index
/// needs: its bounding box and the identity of the coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct SupportRegion {
    /// Index of the coefficient in [`WaveletMesh::coeffs`].
    pub coeff_index: usize,
    /// The inserted vertex this coefficient displaces.
    pub vertex: u32,
    /// Coefficient level `j` (member of `W_j`).
    pub level: u8,
    /// Vertices of the support polygon (the 1-ring of `vertex` in `Mʲ⁺¹`),
    /// sorted.
    pub ring: Vec<u32>,
    /// Minimum bounding box of the support region in object space.
    pub mbb: Rect3,
}

impl SupportRegion {
    /// Projection of the MBB onto the ground (x–y) plane — the spatial part
    /// of the evaluation's 3-D `x-y-w` index.
    pub fn mbr_xy(&self) -> Rect2 {
        Rect2::from_corners(
            mar_geom::Point2::new([self.mbb.lo[0], self.mbb.lo[1]]),
            mar_geom::Point2::new([self.mbb.hi[0], self.mbb.hi[1]]),
        )
    }
}

/// Computes the support region of every coefficient of `wm`, in the same
/// order as `wm.coeffs`.
///
/// The MBB is taken over the *final* vertex positions, which is
/// conservative for every reconstruction level: the union of faces incident
/// to the vertex can only shrink toward the MBB as details are added.
pub fn compute_support_regions(wm: &WaveletMesh) -> Vec<SupportRegion> {
    let mut out = Vec::with_capacity(wm.coeffs.len());
    for j in 0..wm.levels() {
        // Faces of the finer mesh M^{j+1} this level's coefficients act on.
        let faces = wm.hierarchy.faces_at(j + 1);
        // vertex -> incident face list for the finer mesh.
        let fine_n = wm.hierarchy.vertex_count_at(j + 1) as usize;
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); fine_n];
        for (fi, f) in faces.iter().enumerate() {
            for &v in f {
                incident[v as usize].push(fi as u32);
            }
        }
        let range = wm.level_ranges[j].clone();
        for ci in range {
            let c = &wm.coeffs[ci];
            let mut ring: BTreeSet<u32> = BTreeSet::new();
            for &fi in &incident[c.vertex as usize] {
                for &v in &faces[fi as usize] {
                    ring.insert(v);
                }
            }
            debug_assert!(ring.contains(&c.vertex));
            let mut lo = wm.vertex_position(c.vertex);
            let mut hi = lo;
            for &v in &ring {
                let p = wm.vertex_position(v);
                lo = lo.min(&p);
                hi = hi.max(&p);
            }
            out.push(SupportRegion {
                coeff_index: ci,
                vertex: c.vertex,
                level: c.level,
                ring: ring.into_iter().collect(),
                mbb: Rect3::from_corners(lo, hi),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subdivision::SubdivisionHierarchy;
    use crate::wavelet::WaveletMesh;
    use crate::TriMesh;

    fn sphere(levels: usize) -> WaveletMesh {
        let (h, mut fine) = SubdivisionHierarchy::build(TriMesh::octahedron(), levels);
        for v in &mut fine.vertices {
            let n = v.to_vector().norm();
            for c in &mut v.coords {
                *c /= n;
            }
        }
        WaveletMesh::analyze(h, fine.vertices)
    }

    #[test]
    fn one_region_per_coefficient_in_order() {
        let wm = sphere(2);
        let regions = compute_support_regions(&wm);
        assert_eq!(regions.len(), wm.coeffs.len());
        for (i, r) in regions.iter().enumerate() {
            assert_eq!(r.coeff_index, i);
            assert_eq!(r.vertex, wm.coeffs[i].vertex);
            assert_eq!(r.level, wm.coeffs[i].level);
        }
    }

    #[test]
    fn mbb_contains_vertex_and_parents() {
        let wm = sphere(2);
        let regions = compute_support_regions(&wm);
        for (r, c) in regions.iter().zip(&wm.coeffs) {
            assert!(r.mbb.contains_point(&wm.vertex_position(c.vertex)));
            // In quadrisection the inserted vertex's 1-ring includes both
            // parents, so the MBB must cover them.
            assert!(r.mbb.contains_point(&wm.vertex_position(c.parents.0)));
            assert!(r.mbb.contains_point(&wm.vertex_position(c.parents.1)));
        }
    }

    #[test]
    fn ring_matches_mesh_one_ring() {
        let wm = sphere(2);
        let regions = compute_support_regions(&wm);
        // Cross-check the ring of one level-1 coefficient against the
        // finest mesh's adjacency.
        let finest = TriMesh {
            vertices: wm.final_positions.clone(),
            faces: wm.hierarchy.faces_at(wm.levels()).to_vec(),
        };
        let nbrs = finest.vertex_neighbors();
        for r in regions
            .iter()
            .filter(|r| r.level as usize == wm.levels() - 1)
        {
            // ring = 1-ring ∪ {vertex}
            let mut expect = nbrs[r.vertex as usize].clone();
            expect.push(r.vertex);
            expect.sort_unstable();
            assert_eq!(r.ring, expect, "ring mismatch at vertex {}", r.vertex);
        }
    }

    #[test]
    fn deeper_levels_have_smaller_support() {
        let wm = sphere(3);
        let regions = compute_support_regions(&wm);
        let mean_vol = |lvl: u8| -> f64 {
            let rs: Vec<&SupportRegion> = regions.iter().filter(|r| r.level == lvl).collect();
            rs.iter().map(|r| r.mbb.volume()).sum::<f64>() / rs.len() as f64
        };
        let v0 = mean_vol(0);
        let v1 = mean_vol(1);
        let v2 = mean_vol(2);
        assert!(v0 > v1 && v1 > v2, "support volumes {v0} {v1} {v2}");
    }

    #[test]
    fn xy_projection_drops_z() {
        let wm = sphere(1);
        let regions = compute_support_regions(&wm);
        for r in &regions {
            let p = r.mbr_xy();
            assert_eq!(p.lo[0], r.mbb.lo[0]);
            assert_eq!(p.hi[1], r.mbb.hi[1]);
        }
    }

    #[test]
    fn paper_figure1_support_polygon() {
        // One triangle subdivided once: each of the 3 coefficients has a
        // ring of {itself, both parents, the other two midpoints} = 5
        // vertices (the paper's polygon (1,4,2,5,6)).
        let tri = TriMesh::new(
            vec![
                mar_geom::Point3::new([0.0, 0.0, 0.0]),
                mar_geom::Point3::new([2.0, 0.0, 0.0]),
                mar_geom::Point3::new([0.0, 2.0, 0.0]),
            ],
            vec![[0, 1, 2]],
        )
        .unwrap();
        let (h, fine) = SubdivisionHierarchy::build(tri, 1);
        let wm = WaveletMesh::analyze(h, fine.vertices);
        let regions = compute_support_regions(&wm);
        assert_eq!(regions.len(), 3);
        for r in &regions {
            assert_eq!(r.ring.len(), 5, "ring {:?}", r.ring);
        }
    }
}
