//! Client-side progressive decoding.
//!
//! §III: "in a selective transmission scenario, coefficients are retrieved
//! that are only necessary to modify the currently available version of
//! objects in the client." A [`ProgressiveDecoder`] is that currently
//! available version: it owns the base mesh and the set of coefficients
//! received so far, applies new batches incrementally (no full re-decode),
//! and can materialise the current approximation or report its error at
//! any time.
//!
//! The decoder maintains the synthesis invariant incrementally: vertex
//! positions are stored for every level-ordered vertex, and applying a
//! coefficient only re-predicts the subtree of vertices whose parents'
//! positions changed. For the interpolating wavelet used here, a
//! coefficient at level `j` never moves vertices of levels `< j`, and a
//! parent's movement shifts exactly the midpoint predictions of its
//! children — which is what [`ProgressiveDecoder::apply`] propagates.

use crate::subdivision::SubdivisionHierarchy;
use crate::wavelet::{WaveletCoeff, WaveletMesh};
use crate::TriMesh;
use mar_geom::{Point3, Vec3};
use std::collections::BTreeMap;

/// The client-side progressive state of one object.
#[derive(Debug, Clone)]
pub struct ProgressiveDecoder {
    hierarchy: SubdivisionHierarchy,
    /// Current positions of every finest-mesh vertex under the received
    /// coefficient set.
    positions: Vec<Point3>,
    /// Received details, by vertex index.
    received: BTreeMap<u32, Vec3>,
    /// children[v] = vertices whose parent edge includes `v`.
    children: Vec<Vec<u32>>,
    /// Parent edge of every inserted vertex.
    parents: Vec<Option<(u32, u32)>>,
}

impl ProgressiveDecoder {
    /// Starts from the base mesh (the coarsest approximation: every
    /// inserted vertex at its midpoint prediction).
    pub fn new(hierarchy: SubdivisionHierarchy) -> Self {
        let finest = hierarchy.vertex_count_at(hierarchy.levels()) as usize;
        let base_n = hierarchy.base.vertices.len();
        let mut parents: Vec<Option<(u32, u32)>> = vec![None; finest];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); finest];
        for step in &hierarchy.steps {
            for (i, &(a, b)) in step.parents.iter().enumerate() {
                let v = step.new_vertex_index(i);
                parents[v as usize] = Some((a, b));
                children[a as usize].push(v);
                children[b as usize].push(v);
            }
        }
        let mut positions = vec![Point3::ORIGIN; finest];
        positions[..base_n].copy_from_slice(&hierarchy.base.vertices);
        // Initialise every inserted vertex at its midpoint prediction,
        // level by level (parents are always at lower indices… not
        // guaranteed in general, but guaranteed by construction order).
        for step in &hierarchy.steps {
            for (i, &(a, b)) in step.parents.iter().enumerate() {
                let v = step.new_vertex_index(i) as usize;
                positions[v] = positions[a as usize].midpoint(&positions[b as usize]);
            }
        }
        Self {
            hierarchy,
            positions,
            received: BTreeMap::new(),
            children,
            parents,
        }
    }

    /// Number of coefficients received so far.
    pub fn received_count(&self) -> usize {
        self.received.len()
    }

    /// Applies one received coefficient, repositioning its vertex and
    /// re-predicting every descendant whose prediction depended on a moved
    /// vertex. Applying the same coefficient twice is idempotent.
    pub fn apply(&mut self, coeff: &WaveletCoeff) {
        self.received.insert(coeff.vertex, coeff.detail);
        self.reposition(coeff.vertex);
    }

    /// Applies a batch of coefficients (any order, any levels).
    pub fn apply_batch<'a>(&mut self, coeffs: impl IntoIterator<Item = &'a WaveletCoeff>) {
        for c in coeffs {
            self.apply(c);
        }
    }

    /// Recomputes `v`'s position from its parents (plus its detail if
    /// received) and cascades to children whose predictions changed.
    fn reposition(&mut self, v: u32) {
        let mut stack = vec![v];
        while let Some(v) = stack.pop() {
            let vi = v as usize;
            let predicted = match self.parents[vi] {
                Some((a, b)) => self.positions[a as usize].midpoint(&self.positions[b as usize]),
                None => self.positions[vi], // base vertex: fixed
            };
            let new_pos = match self.received.get(&v) {
                Some(d) => predicted + *d,
                None => predicted,
            };
            if new_pos.distance_sq(&self.positions[vi]) > 0.0 {
                self.positions[vi] = new_pos;
                stack.extend(self.children[vi].iter().copied());
            } else if self.parents[vi].is_none() {
                // Base vertices never move; nothing to cascade.
            } else if self.received.contains_key(&v) {
                // Position unchanged but detail may have just been set to
                // an identical value — no cascade needed.
            }
        }
    }

    /// The current approximation as a mesh over the finest connectivity.
    pub fn current_mesh(&self) -> TriMesh {
        TriMesh {
            vertices: self.positions.clone(),
            faces: self.hierarchy.faces_at(self.hierarchy.levels()).to_vec(),
        }
    }

    /// RMS error of the current approximation against a reference.
    pub fn rms_error_against(&self, reference: &WaveletMesh) -> f64 {
        assert_eq!(self.positions.len(), reference.final_positions.len());
        let n = self.positions.len() as f64;
        let sum: f64 = self
            .positions
            .iter()
            .zip(&reference.final_positions)
            .map(|(a, b)| a.distance_sq(b))
            .sum();
        (sum / n).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, ObjectKind, ObjectParams};
    use crate::wavelet::ResolutionBand;

    fn object() -> WaveletMesh {
        generate(&ObjectParams {
            kind: ObjectKind::BumpySphere,
            levels: 3,
            seed: 4,
            ..Default::default()
        })
    }

    #[test]
    fn no_coefficients_equals_coarsest_reconstruction() {
        let wm = object();
        let dec = ProgressiveDecoder::new(wm.hierarchy.clone());
        let coarse = wm.reconstruct_with(|_| false);
        for (a, b) in dec.current_mesh().vertices.iter().zip(&coarse.vertices) {
            assert!(a.distance(b) < 1e-12);
        }
    }

    #[test]
    fn all_coefficients_reconstruct_exactly() {
        let wm = object();
        let mut dec = ProgressiveDecoder::new(wm.hierarchy.clone());
        dec.apply_batch(wm.coeffs.iter());
        assert!(dec.rms_error_against(&wm) < 1e-12);
        assert_eq!(dec.received_count(), wm.coeffs.len());
    }

    #[test]
    fn arrival_order_does_not_matter() {
        let wm = object();
        // Forward order.
        let mut fwd = ProgressiveDecoder::new(wm.hierarchy.clone());
        fwd.apply_batch(wm.coeffs.iter());
        // Reverse order (children before parents).
        let mut rev = ProgressiveDecoder::new(wm.hierarchy.clone());
        let reversed: Vec<&WaveletCoeff> = wm.coeffs.iter().rev().collect();
        rev.apply_batch(reversed);
        for (a, b) in fwd
            .current_mesh()
            .vertices
            .iter()
            .zip(&rev.current_mesh().vertices)
        {
            assert!(a.distance(b) < 1e-12);
        }
        assert!(rev.rms_error_against(&wm) < 1e-12);
    }

    #[test]
    fn progressive_batches_reduce_error_monotonically() {
        // Simulate the paper's selective transmission: the client first
        // receives the significant coefficients, then progressively finer
        // bands — the error must fall with every batch.
        let wm = object();
        let mut dec = ProgressiveDecoder::new(wm.hierarchy.clone());
        let mut last = dec.rms_error_against(&wm);
        let bands = [
            ResolutionBand::new(0.5, 1.0),
            ResolutionBand::new(0.25, 0.5),
            ResolutionBand::new(0.1, 0.25),
            ResolutionBand::new(0.0, 0.1),
        ];
        for band in bands {
            let batch: Vec<&WaveletCoeff> =
                wm.coeffs.iter().filter(|c| band.contains(c.w)).collect();
            dec.apply_batch(batch);
            let err = dec.rms_error_against(&wm);
            assert!(
                err <= last + 1e-12,
                "error rose after band {band:?}: {last} -> {err}"
            );
            last = err;
        }
        assert!(last < 1e-9, "all bands received => exact: {last}");
    }

    #[test]
    fn idempotent_application() {
        let wm = object();
        let mut dec = ProgressiveDecoder::new(wm.hierarchy.clone());
        dec.apply(&wm.coeffs[0]);
        let once = dec.current_mesh();
        dec.apply(&wm.coeffs[0]);
        let twice = dec.current_mesh();
        assert_eq!(once.vertices, twice.vertices);
        assert_eq!(dec.received_count(), 1);
    }

    #[test]
    fn matches_batch_reconstruction_for_arbitrary_subsets() {
        // The incremental decoder must agree with the one-shot synthesis
        // for any subset of coefficients.
        let wm = object();
        let subset = |c: &WaveletCoeff| (c.vertex as usize * 2654435761) % 7 < 3; // arbitrary
        let mut dec = ProgressiveDecoder::new(wm.hierarchy.clone());
        dec.apply_batch(wm.coeffs.iter().filter(|c| subset(c)));
        let reference = wm.reconstruct_with(|c| subset(c));
        for (a, b) in dec.current_mesh().vertices.iter().zip(&reference.vertices) {
            assert!(a.distance(b) < 1e-12);
        }
    }
}
