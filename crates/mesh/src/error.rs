//! Approximation-error metrics and rate–distortion analysis.
//!
//! §III argues that coefficient magnitude is a proxy for *geometric
//! influence*: dropping the small coefficients saves most of the bandwidth
//! while barely moving the surface. This module quantifies that claim for
//! any object — the error metrics compare an approximation against the
//! full-resolution surface, and [`rate_distortion`] sweeps the magnitude
//! threshold to produce the bytes-vs-error curve a vendor would use to
//! tune `MapSpeedToResolution`.

use crate::size::SizeModel;
use crate::wavelet::{ResolutionBand, WaveletMesh};
use crate::TriMesh;

/// Error metrics of one approximation against the reference surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxError {
    /// Root-mean-square vertex displacement.
    pub rms: f64,
    /// Maximum single-vertex displacement (a one-sided Hausdorff distance:
    /// identical connectivity makes the vertex correspondence exact).
    pub max: f64,
    /// Mean vertex displacement.
    pub mean: f64,
}

/// Measures `approx` against `reference` (same connectivity).
///
/// # Panics
/// Panics when the vertex counts differ.
pub fn approximation_error(reference: &WaveletMesh, approx: &TriMesh) -> ApproxError {
    assert_eq!(
        approx.vertices.len(),
        reference.final_positions.len(),
        "approximation must share the reference connectivity"
    );
    let n = reference.final_positions.len() as f64;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut max = 0.0f64;
    for (a, b) in reference.final_positions.iter().zip(&approx.vertices) {
        let d = a.distance(b);
        sum += d;
        sum_sq += d * d;
        max = max.max(d);
    }
    ApproxError {
        rms: (sum_sq / n).sqrt(),
        max,
        mean: sum / n,
    }
}

/// One point of the rate–distortion curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Band lower bound `w_min` used for this point.
    pub w_min: f64,
    /// Coefficients transmitted.
    pub coeffs: usize,
    /// Wire bytes (coefficients only; the base mesh is a constant).
    pub bytes: f64,
    /// Error of the reconstruction.
    pub error: ApproxError,
}

/// Sweeps magnitude thresholds and returns the bytes-vs-error trade-off,
/// coarsest (fewest bytes) first.
pub fn rate_distortion(wm: &WaveletMesh, size: &SizeModel, thresholds: &[f64]) -> Vec<RatePoint> {
    let mut points: Vec<RatePoint> = thresholds
        .iter()
        .map(|&w_min| {
            let band = ResolutionBand::new(w_min, 1.0);
            let rec = wm.reconstruct(band);
            RatePoint {
                w_min,
                coeffs: wm.count_in_band(band),
                bytes: size.band_bytes(wm, band),
                error: approximation_error(wm, &rec),
            }
        })
        .collect();
    points.sort_by(|a, b| a.bytes.total_cmp(&b.bytes));
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, ObjectKind, ObjectParams};

    fn obj() -> WaveletMesh {
        generate(&ObjectParams {
            kind: ObjectKind::Building,
            levels: 4,
            seed: 12,
            ..Default::default()
        })
    }

    #[test]
    fn zero_error_at_full_resolution() {
        let wm = obj();
        let rec = wm.reconstruct(ResolutionBand::FULL);
        let e = approximation_error(&wm, &rec);
        assert!(e.rms < 1e-12 && e.max < 1e-12 && e.mean < 1e-12);
    }

    #[test]
    fn error_ordering_rms_mean_max() {
        let wm = obj();
        let rec = wm.reconstruct(ResolutionBand::new(0.5, 1.0));
        let e = approximation_error(&wm, &rec);
        assert!(e.mean <= e.rms + 1e-15, "mean {} vs rms {}", e.mean, e.rms);
        assert!(e.rms <= e.max + 1e-15, "rms {} vs max {}", e.rms, e.max);
        assert!(e.max > 0.0);
    }

    #[test]
    fn rate_distortion_is_monotone() {
        let wm = obj();
        let size = SizeModel::default();
        let curve = rate_distortion(&wm, &size, &[0.0, 0.05, 0.1, 0.25, 0.5, 1.0]);
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(w[0].bytes <= w[1].bytes, "sorted by rate");
            assert!(
                w[0].error.rms >= w[1].error.rms - 1e-12,
                "more bytes must not increase error: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // The endpoints: coarsest has few coeffs, full has them all.
        assert!(curve[0].coeffs < curve[5].coeffs);
        assert_eq!(curve[5].coeffs, wm.coeffs.len());
        assert!(curve[5].error.rms < 1e-12);
    }

    #[test]
    fn most_error_removed_by_first_bytes() {
        // The §III claim quantified: the top-half band (few bytes) must
        // remove well over half of the coarsest error.
        let wm = obj();
        let size = SizeModel::default();
        let curve = rate_distortion(&wm, &size, &[1.0, 0.25, 0.0]);
        let coarsest = curve[0].error.rms;
        let mid = curve[1].error.rms;
        assert!(
            mid < 0.5 * coarsest,
            "w>=0.25 ({mid}) should halve the coarsest error ({coarsest})"
        );
        // While costing a small fraction of the full bytes.
        assert!(curve[1].bytes < 0.2 * curve[2].bytes);
    }

    #[test]
    #[should_panic(expected = "reference connectivity")]
    fn mismatched_meshes_panic() {
        let wm = obj();
        let bad = TriMesh {
            vertices: vec![mar_geom::Point3::ORIGIN; 3],
            faces: vec![[0, 1, 2]],
        };
        approximation_error(&wm, &bad);
    }
}
