//! # mar-mesh — wavelet multiresolution representation of 3D objects
//!
//! Implements §III of the paper: 3D objects are approximated by triangular
//! surface meshes; a mesh is stored as a coarse *base mesh* `M⁰` plus a
//! sequence of *wavelet coefficient* sets `{W₀ … W_{J−1}}`, where `W_j`
//! holds the missing details needed to turn the level-`j` approximation
//! `Mʲ` into the finer `Mʲ⁺¹`.
//!
//! The decomposition used here is the interpolating ("lazy") wavelet over
//! midpoint quadrisection, exactly the construction of the paper's
//! Figures 1–2: each subdivision step splits every triangle into four by
//! inserting edge midpoints, and the wavelet coefficient of a new vertex is
//! its displacement from the midpoint of its parent edge
//! (`d⁰₄ = v¹₄ − (v⁰₁+v⁰₂)/2`). Coefficient magnitudes are normalised to
//! `[0, 1]` per object, with base-mesh vertices pinned at `w = 1.0` (§VII-A:
//! "all the vertices in the coarsest version of an object have coefficient
//! values 1.0").
//!
//! Modules:
//! * [`mesh`] — indexed triangle meshes and adjacency.
//! * [`subdivision`] — midpoint quadrisection and the subdivision hierarchy.
//! * [`wavelet`] — analysis (decompose) and synthesis (reconstruct) plus
//!   the speed→resolution coefficient selection.
//! * [`support`] — wavelet *support regions* (§VI-A) and their bounding
//!   boxes, the key to the efficient index.
//! * [`generate`] — procedural 3D object generators (buildings, spheres,
//!   terrain) standing in for the paper's city models.
//! * [`size`] — transmission byte accounting (the "MB" in the evaluation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod generate;
pub mod mesh;
pub mod progressive;
pub mod size;
pub mod subdivision;
pub mod support;
pub mod wavelet;

pub use error::{approximation_error, rate_distortion, ApproxError, RatePoint};
pub use generate::{ObjectKind, ObjectParams};
pub use mesh::TriMesh;
pub use progressive::ProgressiveDecoder;
pub use size::SizeModel;
pub use subdivision::{SubdivisionHierarchy, SubdivisionStep};
pub use support::SupportRegion;
pub use wavelet::{ResolutionBand, WaveletCoeff, WaveletMesh};
