//! Wavelet analysis and synthesis over the subdivision hierarchy (§III).
//!
//! *Analysis* turns a final mesh `M^J` (given as positions over the
//! hierarchy's finest connectivity) into the base mesh plus per-level
//! wavelet coefficients: the coefficient of a vertex inserted on edge
//! `(a, b)` is `d = v − (v_a + v_b)/2`, exactly the paper's
//! `d⁰₄ = v¹₄ − (v⁰₁ + v⁰₂)/2`. Because the scheme is interpolating, the
//! parent positions are identical at every level, so analysis is a single
//! pass.
//!
//! *Synthesis* rebuilds an approximation from any subset of coefficients:
//! unselected vertices stay at their predicted midpoints. Selecting by a
//! magnitude band `[w_min, w_max]` implements the paper's speed-dependent
//! resolution choice — the geometric influence of a coefficient is
//! proportional to its (normalised) magnitude, so fast clients retrieve
//! only the large-`w` coefficients.

use crate::subdivision::SubdivisionHierarchy;
use crate::TriMesh;
use mar_geom::{Point3, Vec3};
use std::ops::Range;

/// One wavelet coefficient: the missing detail of one inserted vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveletCoeff {
    /// Global vertex index (stable across levels) of the inserted vertex.
    pub vertex: u32,
    /// Level `j`: this coefficient belongs to `W_j` (refines `Mʲ → Mʲ⁺¹`).
    pub level: u8,
    /// The parent edge the vertex was inserted on.
    pub parents: (u32, u32),
    /// Displacement from the parent-edge midpoint.
    pub detail: Vec3,
    /// Normalised magnitude in `[0, 1]`; larger ⇒ more geometric influence.
    pub w: f64,
}

/// A half-open selection band over normalised coefficient magnitudes.
///
/// Selection is *inclusive* on both ends (`w_min ≤ w ≤ w_max`), matching
/// the paper's `Q(R, w_max, w_min)` queries where `(1.0, 1.0)` selects
/// exactly the coarsest-resolution coefficients and `(1.0, 0.0)` selects
/// everything.
///
/// ```
/// use mar_mesh::ResolutionBand;
/// // A client at normalised speed 0.5 needs w ∈ [0.5, 1.0] (§VII-A).
/// let band = ResolutionBand::new(0.5, 1.0);
/// assert!(band.contains(0.8));
/// assert!(!band.contains(0.3));
/// // Slowing to full stop later requires only the delta [0.0, 0.5).
/// let delta = ResolutionBand::FULL.delta_from(&band).unwrap();
/// assert_eq!(delta.w_min, 0.0);
/// assert!(delta.w_max < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolutionBand {
    /// Lower magnitude bound.
    pub w_min: f64,
    /// Upper magnitude bound.
    pub w_max: f64,
}

impl ResolutionBand {
    /// Everything: `[0, 1]` — the full-resolution object.
    pub const FULL: Self = Self {
        w_min: 0.0,
        w_max: 1.0,
    };

    /// Only the most significant coefficients: `[1, 1]`.
    pub const COARSEST: Self = Self {
        w_min: 1.0,
        w_max: 1.0,
    };

    /// Creates a band, clamping both bounds into `[0, 1]` and swapping if
    /// given in the wrong order.
    pub fn new(w_min: f64, w_max: f64) -> Self {
        let a = w_min.clamp(0.0, 1.0);
        let b = w_max.clamp(0.0, 1.0);
        Self {
            w_min: a.min(b),
            w_max: a.max(b),
        }
    }

    /// True when `w` is selected by this band.
    pub fn contains(&self, w: f64) -> bool {
        self.w_min <= w && w <= self.w_max
    }

    /// The incremental band needed to refine from `coarser` (already
    /// retrieved) to `self`: coefficients in `[self.w_min, coarser.w_min)`.
    /// Returns `None` when `self` requires nothing new.
    ///
    /// This is the §IV "incremental retrieval of the difference when
    /// increasing the resolution": having `w ≥ 0.7` and wanting full
    /// resolution requires exactly `[0.0, 0.7)`.
    pub fn delta_from(&self, coarser: &ResolutionBand) -> Option<ResolutionBand> {
        if self.w_min >= coarser.w_min {
            return None;
        }
        Some(ResolutionBand {
            w_min: self.w_min,
            // Exclusive upper edge, approximated by nudging just below the
            // already-owned bound so inclusive selection does not re-fetch.
            w_max: coarser.w_min - f64::EPSILON.max(coarser.w_min * 1e-12),
        })
    }
}

/// A 3D object in wavelet multiresolution form: base mesh + coefficients +
/// (for convenience and for the straw-man index) the final vertex
/// positions.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletMesh {
    /// Connectivity of every level.
    pub hierarchy: SubdivisionHierarchy,
    /// All coefficients, ordered by level then by insertion order.
    pub coeffs: Vec<WaveletCoeff>,
    /// `level_ranges[j]` slices `coeffs` to exactly `W_j`.
    pub level_ranges: Vec<Range<usize>>,
    /// Positions of every vertex of the finest mesh `M^J`.
    pub final_positions: Vec<Point3>,
    /// The per-object normalisation constant (max raw detail magnitude).
    pub max_detail: f64,
}

impl WaveletMesh {
    /// Wavelet analysis: decomposes the final positions over `hierarchy`
    /// into per-level coefficients with normalised magnitudes.
    ///
    /// # Panics
    /// Panics if `final_positions` does not match the hierarchy's finest
    /// vertex count.
    pub fn analyze(mut hierarchy: SubdivisionHierarchy, final_positions: Vec<Point3>) -> Self {
        let finest = hierarchy.vertex_count_at(hierarchy.levels()) as usize;
        assert_eq!(
            final_positions.len(),
            finest,
            "positions must cover the finest mesh"
        );
        // The scheme is interpolating: base vertices never move, so the
        // base mesh's stored positions are the final positions of the first
        // `|M⁰|` vertices. Enforcing this here makes full reconstruction
        // exact by construction, whatever positions the caller passed in
        // the base.
        let base_n = hierarchy.base.vertices.len();
        hierarchy
            .base
            .vertices
            .copy_from_slice(&final_positions[..base_n]);
        let mut coeffs = Vec::with_capacity(hierarchy.total_detail_count());
        let mut level_ranges = Vec::with_capacity(hierarchy.levels());
        let mut max_detail = 0.0f64;
        for (j, step) in hierarchy.steps.iter().enumerate() {
            let start = coeffs.len();
            for (i, &(a, b)) in step.parents.iter().enumerate() {
                let v = step.new_vertex_index(i);
                let predicted = final_positions[a as usize].midpoint(&final_positions[b as usize]);
                let detail = final_positions[v as usize] - predicted;
                max_detail = max_detail.max(detail.norm());
                coeffs.push(WaveletCoeff {
                    vertex: v,
                    level: j as u8,
                    parents: (a, b),
                    detail,
                    w: 0.0, // normalised below
                });
            }
            level_ranges.push(start..coeffs.len());
        }
        if max_detail > 0.0 {
            for c in &mut coeffs {
                c.w = c.detail.norm() / max_detail;
            }
        }
        Self {
            hierarchy,
            coeffs,
            level_ranges,
            final_positions,
            max_detail,
        }
    }

    /// Number of subdivision levels.
    pub fn levels(&self) -> usize {
        self.hierarchy.levels()
    }

    /// The coefficients of level `j` (the set `W_j`).
    pub fn level_coeffs(&self, j: usize) -> &[WaveletCoeff] {
        &self.coeffs[self.level_ranges[j].clone()]
    }

    /// Iterates over coefficients selected by `band`.
    pub fn coeffs_in_band(&self, band: ResolutionBand) -> impl Iterator<Item = &WaveletCoeff> {
        self.coeffs.iter().filter(move |c| band.contains(c.w))
    }

    /// Number of coefficients selected by `band`.
    pub fn count_in_band(&self, band: ResolutionBand) -> usize {
        self.coeffs_in_band(band).count()
    }

    /// Reconstructs the finest-connectivity mesh using only the
    /// coefficients selected by `selected` (a predicate over coefficients);
    /// unselected vertices stay at their predicted midpoints.
    pub fn reconstruct_with(&self, mut selected: impl FnMut(&WaveletCoeff) -> bool) -> TriMesh {
        let finest = self.hierarchy.vertex_count_at(self.levels()) as usize;
        let mut pos = vec![Point3::ORIGIN; finest];
        let base_n = self.hierarchy.base.vertices.len();
        pos[..base_n].copy_from_slice(&self.hierarchy.base.vertices);
        for j in 0..self.levels() {
            for c in self.level_coeffs(j) {
                let (a, b) = c.parents;
                let mut p = pos[a as usize].midpoint(&pos[b as usize]);
                if selected(c) {
                    p += c.detail;
                }
                pos[c.vertex as usize] = p;
            }
        }
        TriMesh {
            vertices: pos,
            faces: self.hierarchy.faces_at(self.levels()).to_vec(),
        }
    }

    /// Reconstructs using the magnitude band (plus the always-present base
    /// mesh).
    pub fn reconstruct(&self, band: ResolutionBand) -> TriMesh {
        self.reconstruct_with(|c| band.contains(c.w))
    }

    /// Root-mean-square vertex error of a reconstruction against the
    /// original final positions.
    pub fn rms_error(&self, approx: &TriMesh) -> f64 {
        assert_eq!(approx.vertices.len(), self.final_positions.len());
        let n = self.final_positions.len() as f64;
        let sum: f64 = self
            .final_positions
            .iter()
            .zip(&approx.vertices)
            .map(|(a, b)| a.distance_sq(b))
            .sum();
        (sum / n).sqrt()
    }

    /// Position of any finest-mesh vertex.
    pub fn vertex_position(&self, v: u32) -> Point3 {
        self.final_positions[v as usize]
    }

    /// Spatial bounding box of the object (finest mesh).
    pub fn bounding_box(&self) -> mar_geom::Rect3 {
        let mut lo = self.final_positions[0];
        let mut hi = lo;
        for p in &self.final_positions[1..] {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        mar_geom::Rect3::from_corners(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subdivision::SubdivisionHierarchy;
    use crate::TriMesh;

    /// Builds a unit-sphere wavelet mesh: octahedron subdivided `levels`
    /// times, every vertex pushed onto the unit sphere.
    fn sphere(levels: usize) -> WaveletMesh {
        let (h, mut fine) = SubdivisionHierarchy::build(TriMesh::octahedron(), levels);
        for v in &mut fine.vertices {
            let n = v.to_vector().norm();
            for c in &mut v.coords {
                *c /= n;
            }
        }
        // Base positions must match the final positions of base vertices.
        let mut h = h;
        for (i, v) in h.base.vertices.iter_mut().enumerate() {
            *v = fine.vertices[i];
        }
        WaveletMesh::analyze(h, fine.vertices)
    }

    #[test]
    fn full_reconstruction_is_exact() {
        let wm = sphere(3);
        let rec = wm.reconstruct(ResolutionBand::FULL);
        let err = wm.rms_error(&rec);
        assert!(err < 1e-12, "full reconstruction error {err}");
    }

    #[test]
    fn coarsest_reconstruction_has_midpoints() {
        let wm = sphere(2);
        // The empty band keeps every inserted vertex at its midpoint.
        let rec = wm.reconstruct_with(|_| false);
        for c in &wm.coeffs {
            let (a, b) = c.parents;
            let mid = rec.vertices[a as usize].midpoint(&rec.vertices[b as usize]);
            assert!(rec.vertices[c.vertex as usize].distance(&mid) < 1e-12);
        }
    }

    #[test]
    fn w_is_normalized_and_positive_details_exist() {
        let wm = sphere(3);
        assert!(wm.max_detail > 0.0);
        let mut max_w = 0.0f64;
        for c in &wm.coeffs {
            assert!((0.0..=1.0).contains(&c.w), "w out of range: {}", c.w);
            max_w = max_w.max(c.w);
        }
        assert!((max_w - 1.0).abs() < 1e-12, "some coefficient must hit 1.0");
    }

    #[test]
    fn coefficient_magnitudes_decay_with_level() {
        // A smooth surface's details shrink as subdivision refines — the
        // property the speed→resolution mapping exploits.
        let wm = sphere(4);
        let mean_w = |j: usize| -> f64 {
            let cs = wm.level_coeffs(j);
            cs.iter().map(|c| c.w).sum::<f64>() / cs.len() as f64
        };
        let m: Vec<f64> = (0..4).map(mean_w).collect();
        assert!(m[0] > m[1] && m[1] > m[2] && m[2] > m[3], "means {m:?}");
        // Roughly quadratic decay for a sphere; at minimum a 2x drop/level.
        assert!(m[0] > 2.0 * m[1]);
    }

    #[test]
    fn error_decreases_monotonically_with_band() {
        let wm = sphere(3);
        let mut last = f64::INFINITY;
        for wmin in [1.0, 0.75, 0.5, 0.25, 0.1, 0.0] {
            let rec = wm.reconstruct(ResolutionBand::new(wmin, 1.0));
            let err = wm.rms_error(&rec);
            assert!(
                err <= last + 1e-12,
                "error must not grow as band widens: {err} > {last} at wmin={wmin}"
            );
            last = err;
        }
        assert!(last < 1e-12);
    }

    #[test]
    fn band_selection_counts_are_monotone() {
        let wm = sphere(3);
        let c_all = wm.count_in_band(ResolutionBand::FULL);
        let c_half = wm.count_in_band(ResolutionBand::new(0.5, 1.0));
        let c_top = wm.count_in_band(ResolutionBand::COARSEST);
        assert_eq!(c_all, wm.coeffs.len());
        assert!(c_half <= c_all);
        assert!(c_top <= c_half);
    }

    #[test]
    fn band_constructor_clamps_and_orders() {
        let b = ResolutionBand::new(1.5, -0.2);
        assert_eq!(b.w_min, 0.0);
        assert_eq!(b.w_max, 1.0);
        assert!(b.contains(0.5));
        assert!(ResolutionBand::COARSEST.contains(1.0));
        assert!(!ResolutionBand::COARSEST.contains(0.999));
    }

    #[test]
    fn delta_from_computes_increment() {
        let have = ResolutionBand::new(0.7, 1.0);
        let want = ResolutionBand::new(0.0, 1.0);
        let d = want.delta_from(&have).unwrap();
        assert_eq!(d.w_min, 0.0);
        assert!(d.w_max < 0.7 && d.w_max > 0.69);
        // Wanting less or the same requires nothing.
        assert!(have.delta_from(&have).is_none());
        assert!(ResolutionBand::new(0.9, 1.0).delta_from(&have).is_none());
    }

    #[test]
    fn flat_object_has_zero_details() {
        // Subdividing a flat triangle and keeping midpoints exact yields
        // zero details everywhere; w stays 0 and reconstruction is exact.
        let tri = TriMesh::new(
            vec![
                mar_geom::Point3::new([0.0, 0.0, 0.0]),
                mar_geom::Point3::new([1.0, 0.0, 0.0]),
                mar_geom::Point3::new([0.0, 1.0, 0.0]),
            ],
            vec![[0, 1, 2]],
        )
        .unwrap();
        let (h, fine) = SubdivisionHierarchy::build(tri, 2);
        let wm = WaveletMesh::analyze(h, fine.vertices);
        assert_eq!(wm.max_detail, 0.0);
        let rec = wm.reconstruct_with(|_| false);
        assert!(wm.rms_error(&rec) < 1e-12);
    }

    #[test]
    fn level_ranges_partition_coeffs() {
        let wm = sphere(3);
        let total: usize = (0..3).map(|j| wm.level_coeffs(j).len()).sum();
        assert_eq!(total, wm.coeffs.len());
        assert_eq!(wm.level_coeffs(0).len(), 12);
        assert_eq!(wm.level_coeffs(1).len(), 48);
        assert_eq!(wm.level_coeffs(2).len(), 192);
    }
}
