//! Procedural 3D object generators — the stand-in for the paper's city
//! models ("3D objects, e.g., representing old buildings in cities").
//!
//! Each generator builds an octahedron (or a flat patch for terrain),
//! subdivides it `levels` times, displaces the finest vertices onto a
//! procedural surface, and runs wavelet analysis. Because the surfaces are
//! smooth-plus-noise, coefficient magnitudes decay with level exactly as
//! they do for scanned real objects — which is the property the
//! speed→resolution mapping exploits (large-`w` coefficients carry the
//! overall shape, small-`w` ones carry fine detail).
//!
//! All generators are fully deterministic in their seed.

use crate::subdivision::SubdivisionHierarchy;
use crate::wavelet::WaveletMesh;
use crate::TriMesh;
use mar_geom::Point3;

/// What shape family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A rounded-box "building" with façade noise.
    Building,
    /// A bumpy sphere (domes, statues, foliage blobs).
    BumpySphere,
    /// A fractal terrain patch (ground detail).
    Terrain,
}

/// Parameters for one generated object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectParams {
    /// Shape family.
    pub kind: ObjectKind,
    /// Subdivision levels `J` (coefficients ≈ `12·(4ʲ−1)/3` for closed
    /// shapes).
    pub levels: usize,
    /// Deterministic seed; two objects with equal params are identical.
    pub seed: u64,
    /// Object centre in world space.
    pub center: Point3,
    /// Overall half-extent (radius for spheres, half-diagonal for
    /// buildings, half-side for terrain patches).
    pub radius: f64,
    /// Relative amplitude of the high-frequency detail noise in `[0, 1]`.
    pub detail: f64,
}

impl Default for ObjectParams {
    fn default() -> Self {
        Self {
            kind: ObjectKind::Building,
            levels: 4,
            seed: 0,
            center: Point3::ORIGIN,
            radius: 1.0,
            detail: 0.15,
        }
    }
}

/// Generates a wavelet-decomposed object.
pub fn generate(params: &ObjectParams) -> WaveletMesh {
    assert!(params.levels >= 1, "need at least one subdivision level");
    assert!(params.radius > 0.0, "radius must be positive");
    match params.kind {
        ObjectKind::Building => generate_closed(params, building_surface),
        ObjectKind::BumpySphere => generate_closed(params, sphere_surface),
        ObjectKind::Terrain => generate_terrain(params),
    }
}

/// Closed shapes: subdivide the octahedron and push every vertex onto the
/// radial surface `r(direction)`.
fn generate_closed(
    params: &ObjectParams,
    surface: fn(&ObjectParams, [f64; 3]) -> f64,
) -> WaveletMesh {
    let (h, mut fine) = SubdivisionHierarchy::build(TriMesh::octahedron(), params.levels);
    for v in &mut fine.vertices {
        let n = v.to_vector().norm();
        let dir = [v[0] / n, v[1] / n, v[2] / n];
        let r = surface(params, dir);
        for (c, d) in v.coords.iter_mut().zip(dir) {
            *c = d * r;
        }
        *v += params.center - Point3::ORIGIN;
    }
    WaveletMesh::analyze(h, fine.vertices)
}

/// Radial surface of a bumpy sphere: unit radius plus fBm noise.
fn sphere_surface(params: &ObjectParams, dir: [f64; 3]) -> f64 {
    let n = fbm(params.seed, dir, 4, 2.0, 0.5);
    params.radius * (1.0 + params.detail * n)
}

/// Radial surface of a rounded box: the 6-norm turns the sphere into a
/// rounded cube; stretched vertically to read as a building, with façade
/// noise on top.
fn building_surface(params: &ObjectParams, dir: [f64; 3]) -> f64 {
    let p = 6.0;
    let pn = (dir[0].abs().powf(p) + dir[1].abs().powf(p) + dir[2].abs().powf(p)).powf(1.0 / p);
    // Vertical stretch: buildings are taller than wide.
    let stretch = 1.0 + 0.6 * dir[2].abs();
    let n = fbm(params.seed, dir, 5, 2.3, 0.45);
    params.radius * stretch / pn * (1.0 + params.detail * 0.6 * n)
}

/// Terrain: a square patch of two triangles, subdivided, with fractal
/// height displacement.
fn generate_terrain(params: &ObjectParams) -> WaveletMesh {
    let r = params.radius;
    let c = params.center;
    let base = TriMesh::new(
        vec![
            Point3::new([c[0] - r, c[1] - r, c[2]]),
            Point3::new([c[0] + r, c[1] - r, c[2]]),
            Point3::new([c[0] + r, c[1] + r, c[2]]),
            Point3::new([c[0] - r, c[1] + r, c[2]]),
        ],
        vec![[0, 1, 2], [0, 2, 3]],
    )
    // mar-lint: allow(D004) — static 4-vertex, 2-face literal; validity is structural
    .expect("terrain base is valid");
    let (h, mut fine) = SubdivisionHierarchy::build(base, params.levels);
    for v in &mut fine.vertices {
        let u = [(v[0] - c[0]) / r, (v[1] - c[1]) / r, 0.0];
        let n = fbm(params.seed, u, 5, 2.0, 0.5);
        v[2] = c[2] + params.detail * r * n;
    }
    WaveletMesh::analyze(h, fine.vertices)
}

// ---------------------------------------------------------------------------
// Deterministic value noise (no external dependency, stable across runs).
// ---------------------------------------------------------------------------

/// SplitMix64-style integer hash.
fn hash3(seed: u64, x: i64, y: i64, z: i64) -> u64 {
    let mut h = seed
        ^ (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (z as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

/// Lattice value in `[-1, 1]`.
fn lattice(seed: u64, x: i64, y: i64, z: i64) -> f64 {
    let h = hash3(seed, x, y, z);
    (h >> 11) as f64 / ((1u64 << 53) as f64) * 2.0 - 1.0
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Trilinearly interpolated value noise in `[-1, 1]`.
fn value_noise(seed: u64, p: [f64; 3]) -> f64 {
    let ix = p[0].floor() as i64;
    let iy = p[1].floor() as i64;
    let iz = p[2].floor() as i64;
    let fx = smoothstep(p[0] - ix as f64);
    let fy = smoothstep(p[1] - iy as f64);
    let fz = smoothstep(p[2] - iz as f64);
    let mut acc = 0.0;
    for (dx, wx) in [(0i64, 1.0 - fx), (1, fx)] {
        for (dy, wy) in [(0i64, 1.0 - fy), (1, fy)] {
            for (dz, wz) in [(0i64, 1.0 - fz), (1, fz)] {
                acc += wx * wy * wz * lattice(seed, ix + dx, iy + dy, iz + dz);
            }
        }
    }
    acc
}

/// Fractal Brownian motion: `octaves` layers of value noise with the given
/// `lacunarity` (frequency ratio) and `gain` (amplitude ratio). Output is
/// roughly in `[-1, 1]`.
fn fbm(seed: u64, p: [f64; 3], octaves: u32, lacunarity: f64, gain: f64) -> f64 {
    let mut freq = 1.7; // avoid lattice alignment with the unit sphere
    let mut amp = 1.0;
    let mut total = 0.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        total += amp
            * value_noise(
                seed.wrapping_add(o as u64 * 0x9E37),
                [p[0] * freq, p[1] * freq, p[2] * freq],
            );
        norm += amp;
        freq *= lacunarity;
        amp *= gain;
    }
    total / norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavelet::ResolutionBand;

    #[test]
    fn generators_are_deterministic() {
        for kind in [
            ObjectKind::Building,
            ObjectKind::BumpySphere,
            ObjectKind::Terrain,
        ] {
            let p = ObjectParams {
                kind,
                seed: 42,
                levels: 3,
                ..Default::default()
            };
            let a = generate(&p);
            let b = generate(&p);
            assert_eq!(a.coeffs.len(), b.coeffs.len());
            for (x, y) in a.coeffs.iter().zip(&b.coeffs) {
                assert_eq!(x.w, y.w);
                assert_eq!(x.detail, y.detail);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&ObjectParams {
            seed: 1,
            ..Default::default()
        });
        let b = generate(&ObjectParams {
            seed: 2,
            ..Default::default()
        });
        let same = a
            .coeffs
            .iter()
            .zip(&b.coeffs)
            .all(|(x, y)| (x.w - y.w).abs() < 1e-15);
        assert!(!same, "different seeds must give different objects");
    }

    #[test]
    fn objects_are_centered_and_sized() {
        let c = Point3::new([100.0, 200.0, 5.0]);
        let wm = generate(&ObjectParams {
            kind: ObjectKind::BumpySphere,
            center: c,
            radius: 10.0,
            detail: 0.1,
            levels: 3,
            ..Default::default()
        });
        let bb = wm.bounding_box();
        assert!(bb.contains_point(&c));
        // Radius 10 with ±10 % bumps: extent within [16, 24] per axis.
        for i in 0..3 {
            assert!(
                bb.extent(i) > 16.0 && bb.extent(i) < 24.0,
                "extent {}",
                bb.extent(i)
            );
        }
    }

    #[test]
    fn full_reconstruction_exact_for_all_kinds() {
        for kind in [
            ObjectKind::Building,
            ObjectKind::BumpySphere,
            ObjectKind::Terrain,
        ] {
            let wm = generate(&ObjectParams {
                kind,
                levels: 3,
                seed: 7,
                ..Default::default()
            });
            let rec = wm.reconstruct(ResolutionBand::FULL);
            assert!(wm.rms_error(&rec) < 1e-12, "{kind:?}");
        }
    }

    #[test]
    fn coefficients_decay_across_levels_for_all_kinds() {
        for kind in [
            ObjectKind::Building,
            ObjectKind::BumpySphere,
            ObjectKind::Terrain,
        ] {
            let wm = generate(&ObjectParams {
                kind,
                levels: 4,
                seed: 11,
                ..Default::default()
            });
            let mean = |j: usize| {
                let cs = wm.level_coeffs(j);
                cs.iter().map(|c| c.w).sum::<f64>() / cs.len() as f64
            };
            // Coarse levels must dominate fine levels (allowing one noisy
            // inversion would hide real regressions; require strict decay
            // from level 0 to the last level overall).
            assert!(
                mean(0) > mean(3) * 1.5,
                "{kind:?}: level-0 mean {} vs level-3 mean {}",
                mean(0),
                mean(3)
            );
        }
    }

    #[test]
    fn band_thinning_reduces_coefficients_substantially() {
        let wm = generate(&ObjectParams {
            levels: 4,
            seed: 3,
            ..Default::default()
        });
        let all = wm.count_in_band(ResolutionBand::FULL);
        let top_half = wm.count_in_band(ResolutionBand::new(0.5, 1.0));
        assert!(
            (top_half as f64) < 0.3 * all as f64,
            "top-half band kept {top_half}/{all}"
        );
    }

    #[test]
    fn terrain_is_a_heightfield() {
        let wm = generate(&ObjectParams {
            kind: ObjectKind::Terrain,
            levels: 3,
            radius: 50.0,
            detail: 0.2,
            seed: 9,
            ..Default::default()
        });
        let bb = wm.bounding_box();
        // x/y extents are the patch; z extent is small relative.
        assert!((bb.extent(0) - 100.0).abs() < 1e-9);
        assert!(bb.extent(2) < 0.5 * bb.extent(0));
    }

    #[test]
    fn noise_is_bounded_and_smooth() {
        for i in 0..200 {
            let t = i as f64 * 0.05;
            let v = fbm(5, [t, 1.3 * t, 0.7], 4, 2.0, 0.5);
            assert!(v.abs() <= 1.0 + 1e-9);
        }
        // Smoothness: nearby inputs give nearby outputs.
        let a = value_noise(1, [0.5, 0.5, 0.5]);
        let b = value_noise(1, [0.5001, 0.5, 0.5]);
        assert!((a - b).abs() < 0.01);
    }
}
