//! Indexed triangle meshes.
//!
//! A [`TriMesh`] is the flat, cache-friendly representation the rest of the
//! crate works on: a vertex array and a face array of index triples. The
//! adjacency queries here (vertex→faces, vertex neighbours, edge set) are
//! what the wavelet support regions and the straw-man index's
//! "neighbouring vertices" filtering (paper §IV, Figure 3) are built from.

use mar_geom::Point3;
use std::collections::{BTreeMap, BTreeSet};

/// An indexed triangle mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Point3>,
    /// Faces as CCW triples of vertex indices.
    pub faces: Vec<[u32; 3]>,
}

/// Errors found by [`TriMesh::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A face references a vertex index ≥ `vertices.len()`.
    IndexOutOfBounds {
        /// Offending face index.
        face: usize,
    },
    /// A face references the same vertex twice.
    DegenerateFace {
        /// Offending face index.
        face: usize,
    },
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::IndexOutOfBounds { face } => {
                write!(f, "face {face} references a vertex out of bounds")
            }
            MeshError::DegenerateFace { face } => {
                write!(f, "face {face} repeats a vertex")
            }
        }
    }
}

impl std::error::Error for MeshError {}

impl TriMesh {
    /// Creates a mesh after validating its indices.
    pub fn new(vertices: Vec<Point3>, faces: Vec<[u32; 3]>) -> Result<Self, MeshError> {
        let m = Self { vertices, faces };
        m.validate()?;
        Ok(m)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of faces.
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Checks index bounds and face non-degeneracy.
    pub fn validate(&self) -> Result<(), MeshError> {
        let n = self.vertices.len() as u32;
        for (i, f) in self.faces.iter().enumerate() {
            if f.iter().any(|&v| v >= n) {
                return Err(MeshError::IndexOutOfBounds { face: i });
            }
            if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
                return Err(MeshError::DegenerateFace { face: i });
            }
        }
        Ok(())
    }

    /// The set of undirected edges, as ordered `(min, max)` pairs.
    pub fn edges(&self) -> BTreeSet<(u32, u32)> {
        let mut out = BTreeSet::new();
        for f in &self.faces {
            for (a, b) in [(f[0], f[1]), (f[1], f[2]), (f[2], f[0])] {
                out.insert((a.min(b), a.max(b)));
            }
        }
        out
    }

    /// For every vertex, the faces incident to it.
    pub fn vertex_faces(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.vertices.len()];
        for (fi, f) in self.faces.iter().enumerate() {
            for &v in f {
                out[v as usize].push(fi as u32);
            }
        }
        out
    }

    /// For every vertex, its neighbouring vertices (the 1-ring), sorted.
    pub fn vertex_neighbors(&self) -> Vec<Vec<u32>> {
        let mut sets = vec![BTreeSet::new(); self.vertices.len()];
        for f in &self.faces {
            for (a, b) in [(f[0], f[1]), (f[1], f[2]), (f[2], f[0])] {
                sets[a as usize].insert(b);
                sets[b as usize].insert(a);
            }
        }
        sets.into_iter().map(|s| s.into_iter().collect()).collect()
    }

    /// Map from undirected edge to the (1 or 2) faces containing it.
    pub fn edge_faces(&self) -> BTreeMap<(u32, u32), Vec<u32>> {
        let mut out: BTreeMap<(u32, u32), Vec<u32>> = BTreeMap::new();
        for (fi, f) in self.faces.iter().enumerate() {
            for (a, b) in [(f[0], f[1]), (f[1], f[2]), (f[2], f[0])] {
                out.entry((a.min(b), a.max(b))).or_default().push(fi as u32);
            }
        }
        out
    }

    /// True when every edge is shared by exactly two faces (a closed
    /// 2-manifold, like the generator outputs).
    pub fn is_closed(&self) -> bool {
        self.edge_faces().values().all(|fs| fs.len() == 2)
    }

    /// Euler characteristic `V − E + F` (2 for a sphere-topology mesh).
    pub fn euler_characteristic(&self) -> i64 {
        self.vertex_count() as i64 - self.edges().len() as i64 + self.face_count() as i64
    }

    /// Axis-aligned bounding box of the vertices, or `None` for an empty
    /// mesh.
    pub fn bounding_box(&self) -> Option<mar_geom::Rect3> {
        let first = *self.vertices.first()?;
        let mut lo = first;
        let mut hi = first;
        for v in &self.vertices[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some(mar_geom::Rect3::from_corners(lo, hi))
    }

    /// Total surface area (sum of triangle areas).
    pub fn surface_area(&self) -> f64 {
        self.faces
            .iter()
            .map(|f| {
                let a = self.vertices[f[0] as usize];
                let b = self.vertices[f[1] as usize];
                let c = self.vertices[f[2] as usize];
                triangle_area(&a, &b, &c)
            })
            .sum()
    }

    /// The canonical octahedron centred at the origin with unit radius —
    /// the standard closed base mesh used by the generators (6 vertices,
    /// 8 faces, genus 0).
    pub fn octahedron() -> Self {
        let vertices = vec![
            Point3::new([1.0, 0.0, 0.0]),
            Point3::new([-1.0, 0.0, 0.0]),
            Point3::new([0.0, 1.0, 0.0]),
            Point3::new([0.0, -1.0, 0.0]),
            Point3::new([0.0, 0.0, 1.0]),
            Point3::new([0.0, 0.0, -1.0]),
        ];
        let faces = vec![
            [0, 2, 4],
            [2, 1, 4],
            [1, 3, 4],
            [3, 0, 4],
            [2, 0, 5],
            [1, 2, 5],
            [3, 1, 5],
            [0, 3, 5],
        ];
        Self { vertices, faces }
    }
}

/// Area of the triangle `(a, b, c)` via the cross-product magnitude.
pub fn triangle_area(a: &Point3, b: &Point3, c: &Point3) -> f64 {
    let u = *b - *a;
    let v = *c - *a;
    let cx = u[1] * v[2] - u[2] * v[1];
    let cy = u[2] * v[0] - u[0] * v[2];
    let cz = u[0] * v[1] - u[1] * v[0];
    0.5 * (cx * cx + cy * cy + cz * cz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octahedron_is_valid_closed_sphere() {
        let m = TriMesh::octahedron();
        assert!(m.validate().is_ok());
        assert_eq!(m.vertex_count(), 6);
        assert_eq!(m.face_count(), 8);
        assert_eq!(m.edges().len(), 12);
        assert!(m.is_closed());
        assert_eq!(m.euler_characteristic(), 2);
    }

    #[test]
    fn validation_catches_bad_indices() {
        let m = TriMesh {
            vertices: vec![Point3::ORIGIN; 3],
            faces: vec![[0, 1, 5]],
        };
        assert_eq!(m.validate(), Err(MeshError::IndexOutOfBounds { face: 0 }));
        let d = TriMesh {
            vertices: vec![Point3::ORIGIN; 3],
            faces: vec![[0, 1, 1]],
        };
        assert_eq!(d.validate(), Err(MeshError::DegenerateFace { face: 0 }));
    }

    #[test]
    fn neighbors_of_octahedron_apex() {
        let m = TriMesh::octahedron();
        let nbrs = m.vertex_neighbors();
        // Vertex 4 (+z apex) touches the four equator vertices.
        assert_eq!(nbrs[4], vec![0, 1, 2, 3]);
        // Every octahedron vertex has valence 4.
        for n in &nbrs {
            assert_eq!(n.len(), 4);
        }
    }

    #[test]
    fn vertex_faces_cover_all_faces_thrice() {
        let m = TriMesh::octahedron();
        let vf = m.vertex_faces();
        let total: usize = vf.iter().map(|f| f.len()).sum();
        assert_eq!(total, 3 * m.face_count());
    }

    #[test]
    fn edge_faces_closed_mesh() {
        let m = TriMesh::octahedron();
        let ef = m.edge_faces();
        assert_eq!(ef.len(), 12);
        assert!(ef.values().all(|v| v.len() == 2));
    }

    #[test]
    fn triangle_area_unit_right_triangle() {
        let a = Point3::new([0.0, 0.0, 0.0]);
        let b = Point3::new([1.0, 0.0, 0.0]);
        let c = Point3::new([0.0, 1.0, 0.0]);
        assert!((triangle_area(&a, &b, &c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_and_area() {
        let m = TriMesh::octahedron();
        let bb = m.bounding_box().unwrap();
        assert_eq!(bb.lo.coords, [-1.0, -1.0, -1.0]);
        assert_eq!(bb.hi.coords, [1.0, 1.0, 1.0]);
        // Octahedron surface area = 2·√3·a² with edge a = √2 ⇒ 4√3.
        assert!((m.surface_area() - 4.0 * 3.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_mesh_has_no_bbox() {
        let m = TriMesh {
            vertices: vec![],
            faces: vec![],
        };
        assert!(m.bounding_box().is_none());
        assert!(m.validate().is_ok());
    }
}
