//! Midpoint (quadrisection) subdivision — the paper's Figures 1(b)/2(b).
//!
//! One [`subdivide`] step splits every triangle into four by inserting a new
//! vertex at each edge midpoint. The step records, for every new vertex,
//! the *parent edge* it was born on; the wavelet transform later uses this
//! parentage both for prediction (midpoint of the parents) and to locate
//! the coefficient's support region.
//!
//! A [`SubdivisionHierarchy`] stacks `J` steps on top of a base mesh and
//! owns the connectivity of every intermediate level; vertex indices are
//! stable across levels (level `j+1` extends level `j`'s vertex array), so
//! "vertex 17" means the same point of the surface at every level where it
//! exists.

use crate::mesh::TriMesh;
use std::collections::BTreeMap;

/// The connectivity delta of one subdivision step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubdivisionStep {
    /// Number of vertices in the coarse mesh this step refines.
    pub coarse_vertex_count: u32,
    /// Parent edge of each new vertex: new vertex `coarse_vertex_count + i`
    /// sits on the edge `parents[i]` (stored as `(min, max)`).
    pub parents: Vec<(u32, u32)>,
    /// Faces of the refined mesh.
    pub faces: Vec<[u32; 3]>,
}

impl SubdivisionStep {
    /// Number of vertices introduced by this step (= number of coarse edges).
    pub fn new_vertex_count(&self) -> usize {
        self.parents.len()
    }

    /// Number of vertices in the refined mesh.
    pub fn fine_vertex_count(&self) -> u32 {
        self.coarse_vertex_count + self.parents.len() as u32
    }

    /// Global index of the `i`-th new vertex.
    pub fn new_vertex_index(&self, i: usize) -> u32 {
        self.coarse_vertex_count + i as u32
    }
}

/// Splits every face of `mesh` into four, placing new vertices exactly at
/// edge midpoints (the un-deformed mesh of Figure 1(b); callers displace
/// the midpoints afterwards to fit the target surface).
///
/// Returns the refined mesh and the connectivity step.
pub fn subdivide(mesh: &TriMesh) -> (TriMesh, SubdivisionStep) {
    let nv = mesh.vertices.len() as u32;
    let mut vertices = mesh.vertices.clone();
    let mut parents = Vec::new();
    let mut midpoint_of: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    let mut faces = Vec::with_capacity(mesh.faces.len() * 4);

    let mut midpoint = |a: u32, b: u32, vertices: &mut Vec<mar_geom::Point3>| -> u32 {
        let key = (a.min(b), a.max(b));
        *midpoint_of.entry(key).or_insert_with(|| {
            let idx = vertices.len() as u32;
            let p = vertices[a as usize].midpoint(&vertices[b as usize]);
            vertices.push(p);
            parents.push(key);
            idx
        })
    };

    for f in &mesh.faces {
        let [a, b, c] = *f;
        let ab = midpoint(a, b, &mut vertices);
        let bc = midpoint(b, c, &mut vertices);
        let ca = midpoint(c, a, &mut vertices);
        faces.push([a, ab, ca]);
        faces.push([ab, b, bc]);
        faces.push([ca, bc, c]);
        faces.push([ab, bc, ca]);
    }

    let step = SubdivisionStep {
        coarse_vertex_count: nv,
        parents,
        faces: faces.clone(),
    };
    (TriMesh { vertices, faces }, step)
}

/// A base mesh plus `J` recorded subdivision steps.
///
/// The hierarchy owns connectivity only; vertex *positions* of the final
/// mesh live in the [`crate::wavelet::WaveletMesh`] that analysis produces
/// (base positions + details).
#[derive(Debug, Clone, PartialEq)]
pub struct SubdivisionHierarchy {
    /// The coarse base mesh `M⁰` (positions here are the base positions).
    pub base: TriMesh,
    /// One connectivity step per level, `steps[j]` turning `Mʲ` into `Mʲ⁺¹`.
    pub steps: Vec<SubdivisionStep>,
}

impl SubdivisionHierarchy {
    /// Subdivides `base` `levels` times, returning the hierarchy and the
    /// final mesh with all new vertices at exact midpoints (no detail yet).
    pub fn build(base: TriMesh, levels: usize) -> (Self, TriMesh) {
        let mut steps = Vec::with_capacity(levels);
        let mut current = base.clone();
        for _ in 0..levels {
            let (finer, step) = subdivide(&current);
            steps.push(step);
            current = finer;
        }
        (Self { base, steps }, current)
    }

    /// Number of subdivision levels `J`.
    pub fn levels(&self) -> usize {
        self.steps.len()
    }

    /// Vertex count of the level-`j` mesh (`j = 0` is the base).
    pub fn vertex_count_at(&self, j: usize) -> u32 {
        if j == 0 {
            self.base.vertices.len() as u32
        } else {
            self.steps[j - 1].fine_vertex_count()
        }
    }

    /// Faces of the level-`j` mesh.
    pub fn faces_at(&self, j: usize) -> &[[u32; 3]] {
        if j == 0 {
            &self.base.faces
        } else {
            &self.steps[j - 1].faces
        }
    }

    /// Total number of wavelet coefficients the hierarchy will produce
    /// (= total number of inserted vertices).
    pub fn total_detail_count(&self) -> usize {
        self.steps.iter().map(|s| s.new_vertex_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_geom::Point3;

    #[test]
    fn one_step_counts() {
        let base = TriMesh::octahedron();
        let (fine, step) = subdivide(&base);
        // 12 edges -> 12 new vertices; 8 faces -> 32 faces.
        assert_eq!(step.new_vertex_count(), 12);
        assert_eq!(fine.vertex_count(), 18);
        assert_eq!(fine.face_count(), 32);
        assert!(fine.validate().is_ok());
        assert!(fine.is_closed());
        assert_eq!(fine.euler_characteristic(), 2);
    }

    #[test]
    fn new_vertices_sit_on_edge_midpoints() {
        let base = TriMesh::octahedron();
        let (fine, step) = subdivide(&base);
        for (i, &(a, b)) in step.parents.iter().enumerate() {
            let v = fine.vertices[step.new_vertex_index(i) as usize];
            let mid = base.vertices[a as usize].midpoint(&base.vertices[b as usize]);
            assert!(v.distance(&mid) < 1e-12);
        }
    }

    #[test]
    fn old_vertices_keep_positions_and_indices() {
        let base = TriMesh::octahedron();
        let (fine, _) = subdivide(&base);
        for (i, v) in base.vertices.iter().enumerate() {
            assert_eq!(&fine.vertices[i], v);
        }
    }

    #[test]
    fn hierarchy_counts_match_closed_form() {
        // Octahedron: E_j = 12·4^j, so details per level are 12, 48, 192 …
        let (h, finest) = SubdivisionHierarchy::build(TriMesh::octahedron(), 3);
        assert_eq!(h.levels(), 3);
        assert_eq!(h.steps[0].new_vertex_count(), 12);
        assert_eq!(h.steps[1].new_vertex_count(), 48);
        assert_eq!(h.steps[2].new_vertex_count(), 192);
        assert_eq!(h.total_detail_count(), 252);
        assert_eq!(finest.vertex_count(), 6 + 252);
        assert_eq!(finest.face_count(), 8 * 64);
        assert!(finest.is_closed());
    }

    #[test]
    fn vertex_counts_at_levels() {
        let (h, _) = SubdivisionHierarchy::build(TriMesh::octahedron(), 2);
        assert_eq!(h.vertex_count_at(0), 6);
        assert_eq!(h.vertex_count_at(1), 18);
        assert_eq!(h.vertex_count_at(2), 66);
        assert_eq!(h.faces_at(0).len(), 8);
        assert_eq!(h.faces_at(1).len(), 32);
        assert_eq!(h.faces_at(2).len(), 128);
    }

    #[test]
    fn subdividing_single_triangle() {
        // The paper's Figure 1: one triangle, three midpoints, four faces.
        let tri = TriMesh::new(
            vec![
                Point3::new([0.0, 0.0, 0.0]),
                Point3::new([1.0, 0.0, 0.0]),
                Point3::new([0.0, 1.0, 0.0]),
            ],
            vec![[0, 1, 2]],
        )
        .unwrap();
        let (fine, step) = subdivide(&tri);
        assert_eq!(step.new_vertex_count(), 3);
        assert_eq!(fine.face_count(), 4);
        // Total area preserved by midpoint split.
        assert!((fine.surface_area() - tri.surface_area()).abs() < 1e-12);
    }

    #[test]
    fn shared_edges_get_one_midpoint() {
        // Two triangles sharing an edge: 5 edges -> 5 new vertices, not 6.
        let quad = TriMesh::new(
            vec![
                Point3::new([0.0, 0.0, 0.0]),
                Point3::new([1.0, 0.0, 0.0]),
                Point3::new([1.0, 1.0, 0.0]),
                Point3::new([0.0, 1.0, 0.0]),
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        )
        .unwrap();
        let (_, step) = subdivide(&quad);
        assert_eq!(step.new_vertex_count(), 5);
    }
}
