//! Transmission byte accounting.
//!
//! The evaluation measures "amount of data retrieved" in bytes and sizes
//! datasets as 20/40/60/80 MB. A [`SizeModel`] defines how many wire bytes
//! one wavelet coefficient and one base-mesh vertex cost; everything else
//! (frames, data sets, buffers) is derived from it.
//!
//! The default model is the natural binary encoding — a coefficient is a
//! 3 × f32 detail vector plus an f32 magnitude (16 B) and a base vertex is
//! 3 × f32 (12 B). Scene builders may instead fit `coeff_bytes` so a given
//! object population hits an exact target dataset size (the paper's
//! "60 MB = 300 objects"), which trades coefficient count against bytes per
//! coefficient without changing any retrieval *ratio* — see DESIGN.md §4.

use crate::wavelet::{ResolutionBand, WaveletMesh};

/// Wire-size model for multiresolution objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeModel {
    /// Bytes to transmit one wavelet coefficient.
    pub coeff_bytes: f64,
    /// Bytes to transmit one base-mesh vertex.
    pub base_vertex_bytes: f64,
}

impl Default for SizeModel {
    fn default() -> Self {
        Self {
            coeff_bytes: 16.0,
            base_vertex_bytes: 12.0,
        }
    }
}

impl SizeModel {
    /// A model whose coefficient cost is fitted so `total_coeffs`
    /// coefficients plus `total_base_vertices` base vertices occupy exactly
    /// `target_bytes` on the wire.
    pub fn fitted(target_bytes: f64, total_coeffs: usize, total_base_vertices: usize) -> Self {
        assert!(
            total_coeffs > 0,
            "cannot fit a size model to zero coefficients"
        );
        let base_vertex_bytes = 12.0;
        let base = base_vertex_bytes * total_base_vertices as f64;
        let coeff_bytes = ((target_bytes - base) / total_coeffs as f64).max(1.0);
        Self {
            coeff_bytes,
            base_vertex_bytes,
        }
    }

    /// Bytes of one whole object at full resolution.
    pub fn object_bytes(&self, wm: &WaveletMesh) -> f64 {
        self.base_bytes(wm) + self.coeff_bytes * wm.coeffs.len() as f64
    }

    /// Bytes of the always-transmitted base mesh of an object.
    pub fn base_bytes(&self, wm: &WaveletMesh) -> f64 {
        self.base_vertex_bytes * wm.hierarchy.base.vertices.len() as f64
    }

    /// Bytes of the coefficients of `wm` selected by `band` (excluding the
    /// base mesh).
    pub fn band_bytes(&self, wm: &WaveletMesh, band: ResolutionBand) -> f64 {
        self.coeff_bytes * wm.count_in_band(band) as f64
    }

    /// Bytes for transmitting `n` coefficients.
    pub fn coeff_count_bytes(&self, n: usize) -> f64 {
        self.coeff_bytes * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, ObjectParams};

    fn obj() -> WaveletMesh {
        generate(&ObjectParams {
            levels: 3,
            seed: 5,
            ..Default::default()
        })
    }

    #[test]
    fn default_model_binary_sizes() {
        let m = SizeModel::default();
        let wm = obj();
        assert_eq!(m.base_bytes(&wm), 12.0 * 6.0);
        assert_eq!(m.object_bytes(&wm), 12.0 * 6.0 + 16.0 * 252.0);
    }

    #[test]
    fn band_bytes_monotone_in_band() {
        let m = SizeModel::default();
        let wm = obj();
        let full = m.band_bytes(&wm, ResolutionBand::FULL);
        let half = m.band_bytes(&wm, ResolutionBand::new(0.5, 1.0));
        let top = m.band_bytes(&wm, ResolutionBand::COARSEST);
        assert!(full >= half && half >= top);
        assert_eq!(full, 16.0 * wm.coeffs.len() as f64);
    }

    #[test]
    fn fitted_model_hits_target() {
        let wm = obj();
        let target = 1_000_000.0;
        let m = SizeModel::fitted(target, wm.coeffs.len(), wm.hierarchy.base.vertices.len());
        let got = m.object_bytes(&wm);
        assert!((got - target).abs() < 1.0, "got {got}");
    }

    #[test]
    fn fitted_model_floors_at_one_byte() {
        let m = SizeModel::fitted(10.0, 1000, 0);
        assert_eq!(m.coeff_bytes, 1.0);
    }
}
