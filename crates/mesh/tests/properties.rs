//! Property tests for the wavelet pipeline: for arbitrary generated
//! objects and arbitrary magnitude bands, the §III invariants must hold.

use mar_mesh::generate::{generate, ObjectKind, ObjectParams};
use mar_mesh::{ProgressiveDecoder, ResolutionBand};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = ObjectKind> {
    prop_oneof![
        Just(ObjectKind::Building),
        Just(ObjectKind::BumpySphere),
        Just(ObjectKind::Terrain),
    ]
}

fn arb_params() -> impl Strategy<Value = ObjectParams> {
    (arb_kind(), 1usize..4, 0u64..1000, 0.5f64..30.0, 0.0f64..0.4).prop_map(
        |(kind, levels, seed, radius, detail)| ObjectParams {
            kind,
            levels,
            seed,
            radius,
            detail,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full reconstruction is exact for every generated object.
    #[test]
    fn full_reconstruction_exact(params in arb_params()) {
        let wm = generate(&params);
        let rec = wm.reconstruct(ResolutionBand::FULL);
        prop_assert!(wm.rms_error(&rec) < 1e-9);
    }

    /// Magnitudes are normalised into [0, 1] with the max achieved.
    #[test]
    fn magnitudes_normalized(params in arb_params()) {
        let wm = generate(&params);
        let mut max_w = 0.0f64;
        for c in &wm.coeffs {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c.w));
            max_w = max_w.max(c.w);
        }
        if wm.max_detail > 0.0 {
            prop_assert!((max_w - 1.0).abs() < 1e-9);
        }
    }

    /// Widening the band keeps the error non-increasing *up to a small
    /// slack*: for the interpolating wavelet, selecting a parent whose
    /// children's details are still missing shifts those children's
    /// midpoint predictions, which can transiently add a little error.
    /// The claim that holds (and that the retrieval design relies on) is
    /// aggregate: wider bands never make things much worse, and the full
    /// band is exact.
    #[test]
    fn error_near_monotone_in_band(params in arb_params(),
                                   w1 in 0.0f64..1.0, w2 in 0.0f64..1.0) {
        let wm = generate(&params);
        let (lo, hi) = if w1 < w2 { (w1, w2) } else { (w2, w1) };
        let narrow = wm.reconstruct(ResolutionBand::new(hi, 1.0));
        let wide = wm.reconstruct(ResolutionBand::new(lo, 1.0));
        prop_assert!(
            wm.rms_error(&wide) <= wm.rms_error(&narrow) * 1.25 + 1e-9,
            "wider band hurt too much: [{lo},1] err {} vs [{hi},1] err {}",
            wm.rms_error(&wide), wm.rms_error(&narrow)
        );
        // And the full band is always exact.
        let full = wm.reconstruct(ResolutionBand::FULL);
        prop_assert!(wm.rms_error(&full) < 1e-9);
    }

    /// The progressive decoder agrees with one-shot synthesis for an
    /// arbitrary band.
    #[test]
    fn progressive_matches_synthesis(params in arb_params(), wmin in 0.0f64..1.0) {
        let wm = generate(&params);
        let band = ResolutionBand::new(wmin, 1.0);
        let mut dec = ProgressiveDecoder::new(wm.hierarchy.clone());
        dec.apply_batch(wm.coeffs.iter().filter(|c| band.contains(c.w)));
        let reference = wm.reconstruct(band);
        for (a, b) in dec.current_mesh().vertices.iter().zip(&reference.vertices) {
            prop_assert!(a.distance(b) < 1e-9);
        }
    }

    /// Subdivision connectivity survives: closed genus-0 inputs stay
    /// closed genus-0 at the finest level (V − E + F = 2).
    #[test]
    fn closed_objects_stay_closed(params in arb_params()) {
        prop_assume!(params.kind != ObjectKind::Terrain);
        let wm = generate(&params);
        let mesh = wm.reconstruct(ResolutionBand::FULL);
        prop_assert!(mesh.is_closed());
        prop_assert_eq!(mesh.euler_characteristic(), 2);
    }
}
