//! `micro` — the microbenchmark harness (`mar-bench micro`).
//!
//! Times the hot operations the figure sweeps are built from — index
//! construction and window-query throughput — plus one end-to-end figure
//! pair, and writes machine-readable JSON next to the human-readable
//! stderr report:
//!
//! * `BENCH_micro.json` — per-operation statistics (see EXPERIMENTS.md
//!   for the schema),
//! * `BENCH_reproduce.json` — wall time of the end-to-end tables.
//!
//! ```text
//! cargo run -p mar-bench --release --bin micro            # full run
//! cargo run -p mar-bench --release --bin micro -- --smoke # CI smoke
//! cargo run -p mar-bench --release --bin micro -- --out-dir target
//! ```
//!
//! `--smoke` collapses every measurement to a tiny scene and a couple of
//! iterations so CI can prove the harness end-to-end in seconds; the
//! numbers it writes are *not* meaningful measurements and are flagged as
//! `"mode": "smoke"` in both files.

use criterion::{black_box, Criterion, Measurement};
use mar_bench::figs;
use mar_bench::serve::{session_tour, ServeConfig};
use mar_bench::{Scale, Table};
use mar_core::{
    CachePolicy, LinearSpeedMap, QueryRegion, SceneIndexData, Server, ServerCore,
    SpeedResolutionMap, WaveletIndex,
};
use mar_geom::{Point2, Rect3};
use mar_mesh::ResolutionBand;
use mar_rtree::{RTree, RTreeConfig, Variant};
use mar_workload::{frame_at, Placement, Scene};
use std::sync::Arc;
use std::time::Duration;

/// One serialised benchmark entry.
struct Entry {
    group: &'static str,
    name: String,
    m: Measurement,
    /// Queries executed per iteration (1 for non-query benches) so
    /// per-query time can be derived from the per-iteration mean.
    ops_per_iter: u64,
    /// Buffer-pool hit ratio of the measured run (`io` tour points only).
    hit_ratio: Option<f64>,
}

struct Options {
    smoke: bool,
    out_dir: String,
    /// Path to a committed `BENCH_micro.json` to regression-gate against.
    gate: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        out_dir: ".".to_string(),
        gate: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--out-dir" => {
                opts.out_dir = it
                    .next()
                    .ok_or_else(|| "--out-dir needs a value".to_string())?
                    .clone();
            }
            "--gate" => {
                opts.gate = Some(
                    it.next()
                        .ok_or_else(|| "--gate needs a baseline path".to_string())?
                        .clone(),
                );
            }
            _ if a.starts_with("--out-dir=") => {
                opts.out_dir = a["--out-dir=".len()..].to_string();
            }
            _ if a.starts_with("--gate=") => {
                opts.gate = Some(a["--gate=".len()..].to_string());
            }
            other => {
                return Err(format!(
                    "unknown argument: {other}\nusage: micro [--smoke] [--out-dir DIR] [--gate BASELINE.json]"
                ))
            }
        }
    }
    Ok(opts)
}

/// The measurement scale: scene size and timing budgets.
struct MicroScale {
    objects: usize,
    levels: usize,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    /// Ticks each of the `io` tour-workload sessions replays.
    io_ticks: usize,
}

impl MicroScale {
    fn full() -> Self {
        Self {
            objects: 60,
            levels: 3,
            sample_size: 10,
            measurement: Duration::from_millis(1500),
            warm_up: Duration::from_millis(200),
            io_ticks: 120,
        }
    }

    fn smoke() -> Self {
        Self {
            objects: 12,
            levels: 2,
            sample_size: 2,
            measurement: Duration::from_millis(30),
            warm_up: Duration::from_millis(5),
            io_ticks: 12,
        }
    }
}

/// Lifted `(rect, id)` items for the 3-D support index.
fn index_items(data: &SceneIndexData) -> Vec<(Rect3, mar_core::CoeffRef)> {
    data.records
        .iter()
        .map(|r| (r.support_xy.lift(r.w, r.w), r.id))
        .collect()
}

/// An evenly spaced `k × k` grid of query centers inside the space.
fn query_centers(scene: &Scene, k: usize) -> Vec<Point2> {
    let space = scene.config.space;
    let mut out = Vec::with_capacity(k * k);
    for iy in 0..k {
        for ix in 0..k {
            let fx = (ix as f64 + 0.5) / k as f64;
            let fy = (iy as f64 + 0.5) / k as f64;
            out.push(Point2::new([
                space.lo[0] + fx * space.extent(0),
                space.lo[1] + fy * space.extent(1),
            ]));
        }
    }
    out
}

fn bench_index_build(
    c: &mut Criterion,
    ms: &MicroScale,
    data: &SceneIndexData,
    entries: &mut Vec<Entry>,
) {
    let mut group = c.benchmark_group("index_build");
    group
        .sample_size(ms.sample_size)
        .measurement_time(ms.measurement)
        .warm_up_time(ms.warm_up);
    if let Some(m) = group.bench_function_measured("wavelet_str_bulk", |b| {
        b.iter(|| WaveletIndex::build(black_box(data)))
    }) {
        entries.push(Entry {
            group: "index_build",
            name: "wavelet_str_bulk".into(),
            m,
            ops_per_iter: 1,
            hit_ratio: None,
        });
    }
    let paper = RTreeConfig::paper();
    for (label, variant) in [
        ("guttman_insert", Variant::Guttman),
        ("rstar_insert", Variant::RStar),
    ] {
        let items = index_items(data);
        if let Some(m) = group.bench_function_measured(label, |b| {
            b.iter(|| {
                let mut tree: RTree<3, mar_core::CoeffRef> =
                    RTree::new(RTreeConfig::new(paper.max_entries, variant));
                for (rect, id) in &items {
                    tree.insert(*rect, *id);
                }
                tree
            })
        }) {
            entries.push(Entry {
                group: "index_build",
                name: label.into(),
                m,
                ops_per_iter: 1,
                hit_ratio: None,
            });
        }
    }
    group.finish();
}

fn bench_window_queries(
    c: &mut Criterion,
    ms: &MicroScale,
    scene: &Scene,
    index: &WaveletIndex,
    entries: &mut Vec<Entry>,
) {
    let centers = query_centers(scene, 4);
    let bands: [(&str, ResolutionBand); 3] = [
        ("full", ResolutionBand::FULL),
        ("half", ResolutionBand::new(0.5, 1.0)),
        ("top", ResolutionBand::new(0.9, 1.0)),
    ];
    let mut group = c.benchmark_group("window_query");
    group
        .sample_size(ms.sample_size)
        .measurement_time(ms.measurement)
        .warm_up_time(ms.warm_up);
    for frac in [0.01, 0.05, 0.10, 0.20, 0.25] {
        for (band_label, band) in bands {
            let name = format!("frac{:02}_{band_label}", (frac * 100.0) as u32);
            let windows: Vec<_> = centers
                .iter()
                .map(|p| frame_at(&scene.config.space, p, frac))
                .collect();
            if let Some(m) = group.bench_function_measured(&name, |b| {
                b.iter(|| {
                    let mut total = 0usize;
                    for w in &windows {
                        total += index.count_in(black_box(w), band).0;
                    }
                    total
                })
            }) {
                entries.push(Entry {
                    group: "window_query",
                    name,
                    m,
                    ops_per_iter: windows.len() as u64,
                    hit_ratio: None,
                });
            }
        }
    }
    group.finish();
}

/// The batched group-descent kernel at batch sizes K ∈ {1, 4, 16}: the
/// same 16-window sweep as `window_query/frac05_full`, chunked into
/// groups of K that descend the index together. `k01` measures the
/// batched kernel's fixed overhead against the scalar path; `k16` shows
/// the cross-session sharing win.
fn bench_window_query_batch(
    c: &mut Criterion,
    ms: &MicroScale,
    scene: &Scene,
    index: &WaveletIndex,
    entries: &mut Vec<Entry>,
) {
    let centers = query_centers(scene, 4);
    let queries: Vec<(mar_geom::Rect2, ResolutionBand)> = centers
        .iter()
        .map(|p| (frame_at(&scene.config.space, p, 0.05), ResolutionBand::FULL))
        .collect();
    let mut group = c.benchmark_group("window_query_batch");
    group
        .sample_size(ms.sample_size)
        .measurement_time(ms.measurement)
        .warm_up_time(ms.warm_up);
    for k in [1usize, 4, 16] {
        let name = format!("k{k:02}_frac05_full");
        if let Some(m) = group.bench_function_measured(&name, |b| {
            b.iter(|| {
                let mut total = 0usize;
                for chunk in queries.chunks(k) {
                    index.for_each_batch(black_box(chunk), |_, _| total += 1);
                }
                total
            })
        }) {
            entries.push(Entry {
                group: "window_query_batch",
                name,
                m,
                ops_per_iter: queries.len() as u64,
                hit_ratio: None,
            });
        }
    }
    group.finish();
}

/// Byte budget of the `io` tour-workload pool: small enough that the
/// eviction policy matters, large enough that a policy can actually keep
/// a working set (8 pages).
const IO_TOUR_BUDGET: usize = 8 * 4096;

/// The out-of-core read path (`io` group): cold and warm page reads
/// through the buffer pool, then the tour-workload hit ratio of the
/// motion-aware eviction policy against plain LRU at the same byte
/// budget. The page file is built in `--out-dir` so CI exercises the
/// store writer on every run.
fn bench_io(
    c: &mut Criterion,
    ms: &MicroScale,
    scene: &Scene,
    data: &Arc<SceneIndexData>,
    out_dir: &str,
    entries: &mut Vec<Entry>,
) {
    let store_path = format!("{out_dir}/micro_store.pages");
    if let Err(e) = mar_core::write_store(std::path::Path::new(&store_path), data) {
        eprintln!("micro: cannot write page file {store_path}: {e}");
        std::process::exit(1);
    }
    let windows: Vec<_> = query_centers(scene, 4)
        .iter()
        .map(|p| frame_at(&scene.config.space, p, 0.05))
        .collect();
    let open = |budget: usize, policy: CachePolicy| {
        WaveletIndex::open_paged(std::path::Path::new(&store_path), budget, policy)
            // mar-lint: allow(D004) — the store was just written by this process; failing to reopen it is fatal
            .expect("micro: cannot reopen the page file")
    };
    let mut group = c.benchmark_group("io");
    group
        .sample_size(ms.sample_size)
        .measurement_time(ms.measurement)
        .warm_up_time(ms.warm_up);
    // Cold: a single-page pool, so nearly every node access faults and
    // each query pays the full read-and-decode path.
    let cold = open(4096, CachePolicy::Lru);
    if let Some(m) = group.bench_function_measured("page_read_cold", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in &windows {
                total += cold.count_in(black_box(w), ResolutionBand::FULL).0;
            }
            total
        })
    }) {
        entries.push(Entry {
            group: "io",
            name: "page_read_cold".into(),
            m,
            ops_per_iter: windows.len() as u64,
            hit_ratio: None,
        });
    }
    // Warm: a pool big enough for the whole file; after one priming sweep
    // every read hits, so this is the pure pool-lookup overhead.
    let warm = open(64 << 20, CachePolicy::Lru);
    for w in &windows {
        warm.count_in(w, ResolutionBand::FULL);
    }
    if let Some(m) = group.bench_function_measured("page_read_warm", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in &windows {
                total += warm.count_in(black_box(w), ResolutionBand::FULL).0;
            }
            total
        })
    }) {
        entries.push(Entry {
            group: "io",
            name: "page_read_warm".into(),
            m,
            ops_per_iter: windows.len() as u64,
            hit_ratio: None,
        });
    }
    group.finish();

    // Tour hit ratio: replay the serving tours through a starved pool
    // under each policy. One deterministic replay per policy — the ratio
    // is exact, not sampled; the wall time rides along as `mean_ns`.
    let tour_cfg = ServeConfig {
        sessions: 4,
        ticks: ms.io_ticks,
        objects: ms.objects,
        levels: ms.levels,
        frame_frac: 0.1,
        jobs: 1,
        tour_seed: 901,
    };
    let tours: Vec<_> = (0..tour_cfg.sessions)
        .map(|k| session_tour(&tour_cfg, scene.config.space, k))
        .collect();
    let mut ratios = Vec::new();
    for (name, policy) in [
        ("tour_hit_ratio_motion", CachePolicy::MotionAware),
        ("tour_hit_ratio_lru", CachePolicy::Lru),
    ] {
        let index = open(IO_TOUR_BUDGET, policy);
        let server = Server::from_core(ServerCore::from_parts(data.clone(), Arc::new(index)));
        let sessions: Vec<u64> = (0..tour_cfg.sessions).map(|_| server.connect()).collect();
        // mar-lint: allow(D003) — wall-time measurement is this harness's job
        let t0 = std::time::Instant::now();
        for tick in 0..tour_cfg.ticks {
            for (k, &c) in sessions.iter().enumerate() {
                let s = &tours[k].samples[tick];
                let frame = frame_at(&scene.config.space, &s.pos, tour_cfg.frame_frac);
                let q = [QueryRegion {
                    region: frame,
                    band: LinearSpeedMap.band_for(s.speed),
                }];
                server
                    .query(c, &q)
                    // mar-lint: allow(D004) — sessions were minted by the connect loop above and live until teardown
                    .expect("micro: io tour session vanished");
            }
        }
        let ns = t0.elapsed().as_nanos() as f64;
        for &c in &sessions {
            server
                .disconnect(c)
                // mar-lint: allow(D004) — sessions were minted by the connect loop above
                .expect("micro: io tour session vanished");
        }
        let stats = server
            .index()
            .cache_stats()
            // mar-lint: allow(D004) — the index was opened paged three lines up
            .expect("micro: paged index has a pool");
        let reads = (stats.hits + stats.faults).max(1);
        let ratio = stats.hits as f64 / reads as f64;
        ratios.push(ratio);
        entries.push(Entry {
            group: "io",
            name: name.into(),
            m: Measurement {
                mean_ns: ns,
                min_ns: ns,
                max_ns: ns,
                iters: 1,
            },
            ops_per_iter: (tour_cfg.sessions * tour_cfg.ticks) as u64,
            hit_ratio: Some(ratio),
        });
        eprintln!(
            "  io/{name}: hit ratio {ratio:.4} ({} hits / {} faults)",
            stats.hits, stats.faults
        );
    }
    if ratios[0] <= ratios[1] {
        eprintln!(
            "micro: WARNING — motion-aware hit ratio {:.4} does not beat LRU {:.4} on this scene",
            ratios[0], ratios[1]
        );
    }
}

/// End-to-end: regenerate one index figure and one system figure at the
/// CI scale, recording wall time per table.
fn bench_end_to_end(smoke: bool) -> (Vec<(String, f64, usize)>, f64) {
    let scale = if smoke {
        let mut s = Scale::quick();
        s.ticks = 60;
        s.speeds = vec![0.5];
        s.objects_default = 12;
        s.levels = 2;
        s
    } else {
        Scale::quick()
    };
    let mut rows: Vec<(String, f64, usize)> = Vec::new();
    let mut total = 0.0;
    let mut run = |label: &str, table: Box<dyn FnOnce() -> Table>| {
        // mar-lint: allow(D003) — wall-time measurement is this harness's job
        let t0 = std::time::Instant::now();
        let t = table();
        let secs = t0.elapsed().as_secs_f64();
        eprintln!("  end_to_end/{label}: {secs:.3} s ({} rows)", t.rows.len());
        rows.push((label.to_string(), secs, t.rows.len()));
        total += secs;
    };
    let s13 = scale.clone();
    run("fig13a", Box::new(move || figs::fig13a(&s13)));
    let s14 = scale.clone();
    run(
        "fig14",
        Box::new(move || figs::fig14_15(&s14, Placement::Uniform)),
    );
    (rows, total)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extracts `"key": "value"` from a single JSON line.
fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts `"key": <number>` from a single JSON line.
fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses `(group, name, per_op_ns)` triples out of a committed
/// `BENCH_micro.json`. Relies only on the one-result-per-line layout this
/// binary itself writes — no JSON dependency needed.
fn parse_baseline(path: &str) -> Result<Vec<(String, String, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("gate: cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(group), Some(name), Some(per_op)) = (
            extract_str(line, "group"),
            extract_str(line, "name"),
            extract_num(line, "per_op_ns"),
        ) else {
            continue;
        };
        out.push((group, name, per_op));
    }
    if out.is_empty() {
        return Err(format!("gate: no benchmark entries found in {path}"));
    }
    Ok(out)
}

/// The CI perf smoke gate: every `window_query` and `io` point measured
/// in this run must stay within `3x` of the committed baseline's
/// `per_op_ns`. The factor is deliberately generous — the smoke scene is
/// far smaller than the committed full-scale scene and CI machines are
/// noisy, so the gate only fires on order-of-magnitude regressions (e.g.
/// the batched kernel accidentally losing its vectorised inner loop, or
/// the pool read path growing a copy), never on jitter. Points present on
/// only one side are skipped, so adding or retiring a point never breaks
/// the gate — and a committed snapshot that predates the `io` group skips
/// that whole group gracefully instead of failing. Hit-ratio tour points
/// are excluded: they are single-shot replays whose wall time is not a
/// stable signal (the ratio itself is what they report).
fn run_gate(gate_path: &str, entries: &[Entry]) -> Result<usize, String> {
    const FACTOR: f64 = 3.0;
    let baseline = parse_baseline(gate_path)?;
    let mut checked = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for grp in ["window_query", "io"] {
        if !baseline.iter().any(|(g, _, _)| g == grp) {
            eprintln!("micro: gate: {gate_path} predates the '{grp}' group; skipping it");
            continue;
        }
        for e in entries
            .iter()
            .filter(|e| e.group == grp && e.hit_ratio.is_none())
        {
            let per_op = e.m.mean_ns / e.ops_per_iter as f64;
            if let Some((_, _, base)) = baseline.iter().find(|(g, n, _)| g == grp && *n == e.name) {
                checked += 1;
                let base = *base;
                if per_op > base * FACTOR {
                    failures.push(format!(
                        "  {grp}/{}: {per_op:.1} ns/op exceeds {FACTOR}x committed baseline {base:.1} ns/op",
                        e.name
                    ));
                }
            }
        }
    }
    if checked == 0 {
        return Err(format!(
            "gate: no gated entries of this run match {gate_path}"
        ));
    }
    if !failures.is_empty() {
        return Err(format!(
            "gate: perf regression vs {gate_path}:\n{}",
            failures.join("\n")
        ));
    }
    Ok(checked)
}

fn write_micro_json(
    path: &str,
    mode: &str,
    scene: &Scene,
    coeffs: usize,
    entries: &[Entry],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mar-bench-micro/3\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"scene\": {{\"objects\": {}, \"coefficients\": {}, \"levels\": {}}},\n",
        scene.objects.len(),
        coeffs,
        scene.config.levels
    ));
    out.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let per_op = e.m.mean_ns / e.ops_per_iter as f64;
        let hit_ratio = e
            .hit_ratio
            .map_or(String::new(), |r| format!(", \"hit_ratio\": {r:.6}"));
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"iters\": {}, \
             \"ops_per_iter\": {}, \"per_op_ns\": {:.1}{}}}{}\n",
            json_escape(e.group),
            json_escape(&e.name),
            e.m.mean_ns,
            e.m.min_ns,
            e.m.max_ns,
            e.m.iters,
            e.ops_per_iter,
            per_op,
            hit_ratio,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn write_reproduce_json(
    path: &str,
    mode: &str,
    tables: &[(String, f64, usize)],
    total: f64,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mar-bench-reproduce/1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"scale\": \"quick\",\n");
    out.push_str("  \"tables\": [\n");
    for (i, (id, secs, rows)) in tables.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"seconds\": {:.3}, \"rows\": {}}}{}\n",
            json_escape(id),
            secs,
            rows,
            if i + 1 == tables.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"total_seconds\": {total:.3}\n"));
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mode = if opts.smoke { "smoke" } else { "full" };
    let ms = if opts.smoke {
        MicroScale::smoke()
    } else {
        MicroScale::full()
    };
    eprintln!(
        "micro: {mode} run ({} objects, {} levels)",
        ms.objects, ms.levels
    );

    let mut scale = Scale::quick();
    scale.objects_default = ms.objects;
    scale.levels = ms.levels;
    let scene = figs::build_scene(&scale, ms.objects, Placement::Uniform);
    let data = Arc::new(SceneIndexData::build(&scene));
    let index = WaveletIndex::build(&data);

    let mut c = Criterion::default();
    let mut entries: Vec<Entry> = Vec::new();
    bench_index_build(&mut c, &ms, &data, &mut entries);
    bench_window_queries(&mut c, &ms, &scene, &index, &mut entries);
    bench_window_query_batch(&mut c, &ms, &scene, &index, &mut entries);
    bench_io(&mut c, &ms, &scene, &data, &opts.out_dir, &mut entries);

    eprintln!("\nbench group: end_to_end");
    let (tables, total) = bench_end_to_end(opts.smoke);

    let micro_path = format!("{}/BENCH_micro.json", opts.out_dir);
    let repro_path = format!("{}/BENCH_reproduce.json", opts.out_dir);
    if let Err(e) = write_micro_json(&micro_path, mode, &scene, data.len(), &entries) {
        eprintln!("micro: cannot write {micro_path}: {e}");
        std::process::exit(1);
    }
    if let Err(e) = write_reproduce_json(&repro_path, mode, &tables, total) {
        eprintln!("micro: cannot write {repro_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("\nmicro: wrote {micro_path} and {repro_path}");

    // The regression gate runs last, after both JSON files exist, so a
    // failing run still uploads its artifacts for inspection.
    if let Some(gate_path) = &opts.gate {
        match run_gate(gate_path, &entries) {
            Ok(checked) => eprintln!(
                "micro: perf gate passed ({checked} window_query/io points within 3x of {gate_path})"
            ),
            Err(e) => {
                eprintln!("micro: {e}");
                std::process::exit(1);
            }
        }
    }
}
