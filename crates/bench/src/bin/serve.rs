//! `serve` — the multi-session serving throughput harness
//! (`mar-bench serve`).
//!
//! Replays K concurrent client tours against one shared [`mar_core::Server`]
//! via [`mar_bench::serve::run_serve`] and writes `BENCH_serve.json`
//! (see EXPERIMENTS.md for the schema):
//!
//! ```text
//! cargo run -p mar-bench --release --bin serve              # full run
//! cargo run -p mar-bench --release --bin serve -- --jobs 4
//! cargo run -p mar-bench --release --bin serve -- --smoke --out-dir target
//! ```
//!
//! The transcript (and every served-payload aggregate) is byte-identical
//! for any `--jobs` value — the JSON records its FNV-1a fingerprint so
//! runs can be compared across processes. Only the wall-clock fields
//! (`elapsed_s`, `queries_per_sec`, tick latencies) vary with `--jobs`.
//! `--smoke` collapses the workload so CI can prove the harness in
//! seconds; its numbers are not meaningful measurements and are flagged
//! as `"mode": "smoke"`.

use mar_bench::serve::{fnv1a64, run_serve, ServeConfig, ServeReport};

struct Options {
    smoke: bool,
    jobs: usize,
    out_dir: String,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        jobs: default_jobs(),
        out_dir: ".".to_string(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--jobs needs a value".to_string())?;
                opts.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?;
            }
            "--out-dir" => {
                opts.out_dir = it
                    .next()
                    .ok_or_else(|| "--out-dir needs a value".to_string())?
                    .clone();
            }
            _ if a.starts_with("--jobs=") => {
                let v = &a["--jobs=".len()..];
                opts.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?;
            }
            _ if a.starts_with("--out-dir=") => {
                opts.out_dir = a["--out-dir=".len()..].to_string();
            }
            other => {
                return Err(format!(
                    "unknown argument: {other}\nusage: serve [--smoke] [--jobs N] [--out-dir DIR]"
                ))
            }
        }
    }
    Ok(opts)
}

fn write_serve_json(path: &str, mode: &str, jobs: usize, r: &ServeReport) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mar-bench-serve/2\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"sessions\": {},\n", r.sessions));
    out.push_str(&format!("  \"ticks\": {},\n", r.ticks));
    out.push_str(&format!("  \"queries\": {},\n", r.queries));
    out.push_str(&format!("  \"bytes_served\": {:.1},\n", r.bytes));
    out.push_str(&format!("  \"coeffs_served\": {},\n", r.coeffs));
    out.push_str(&format!("  \"index_io\": {},\n", r.io));
    out.push_str(&format!("  \"index_unique_io\": {},\n", r.unique_io));
    out.push_str(&format!("  \"elapsed_s\": {:.6},\n", r.elapsed_s));
    out.push_str(&format!(
        "  \"queries_per_sec\": {:.1},\n",
        r.queries_per_sec()
    ));
    out.push_str(&format!(
        "  \"tick_latency_ns\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
        r.tick_latency_ns(0.50),
        r.tick_latency_ns(0.99),
        r.tick_latency_ns(1.0)
    ));
    out.push_str(&format!(
        "  \"transcript_fnv64\": \"{:016x}\"\n",
        fnv1a64(&r.transcript)
    ));
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mode = if opts.smoke { "smoke" } else { "full" };
    let cfg = if opts.smoke {
        ServeConfig::smoke(opts.jobs)
    } else {
        ServeConfig::full(opts.jobs)
    };
    eprintln!(
        "serve: {mode} run ({} sessions x {} ticks, {} objects, jobs={})",
        cfg.sessions, cfg.ticks, cfg.objects, cfg.jobs
    );

    let report = run_serve(&cfg);
    eprintln!(
        "serve: {} queries in {:.3} s ({:.1} q/s), {:.1} KiB served, \
         tick p50 {:.1} us / p99 {:.1} us",
        report.queries,
        report.elapsed_s,
        report.queries_per_sec(),
        report.bytes / 1024.0,
        report.tick_latency_ns(0.50) as f64 / 1e3,
        report.tick_latency_ns(0.99) as f64 / 1e3,
    );

    let path = format!("{}/BENCH_serve.json", opts.out_dir);
    if let Err(e) = write_serve_json(&path, mode, opts.jobs, &report) {
        eprintln!("serve: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "serve: wrote {path} (transcript fnv64 {:016x})",
        fnv1a64(&report.transcript)
    );
}
