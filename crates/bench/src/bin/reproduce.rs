//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! cargo run -p mar-bench --release --bin reproduce               # all, quick scale
//! cargo run -p mar-bench --release --bin reproduce -- --paper    # full paper scale
//! cargo run -p mar-bench --release --bin reproduce -- fig8 fig12
//! cargo run -p mar-bench --release --bin reproduce -- --jobs 8   # 8 worker threads
//! cargo run -p mar-bench --release --bin reproduce -- --serial   # force 1 worker
//! cargo run -p mar-bench --release --bin reproduce -- --ablations
//! ```
//!
//! Sweeps run on a deterministic parallel [`Engine`]: the worker count
//! changes wall-clock time only, never the numbers (see DESIGN.md §6).
//! Tables are printed to stdout and each is written to `results/<id>.csv`
//! **as soon as it completes**, so a crash or interrupt in a later figure
//! cannot lose earlier results.
//!
//! Positional arguments select experiments by exact table id (`fig9a`,
//! `fig10b`, `abl_sectors`), experiment name (`fig10` = both of its
//! tables), or group (`fig9`, `fig13`, `abl`). Unknown selectors are an
//! error, not a silent no-op.

use mar_bench::engine::Engine;
use mar_bench::{ablations, figs, Scale, Table};
use mar_workload::Placement;
use std::io::Write as _;

/// One runnable unit: an experiment producing one or two tables.
struct Experiment {
    /// Experiment name (also a valid selector).
    name: &'static str,
    /// Table ids the experiment produces (each a valid selector).
    ids: &'static [&'static str],
    /// True for the ablation studies (excluded from the default run).
    ablation: bool,
    run: fn(&Engine, &Scale) -> Vec<Table>,
}

fn one(t: Table) -> Vec<Table> {
    vec![t]
}

fn two((a, b): (Table, Table)) -> Vec<Table> {
    vec![a, b]
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "fig8",
        ids: &["fig8"],
        ablation: false,
        run: |e, s| one(figs::fig8_with(e, s)),
    },
    Experiment {
        name: "fig9a",
        ids: &["fig9a"],
        ablation: false,
        run: |e, s| one(figs::fig9a_with(e, s)),
    },
    Experiment {
        name: "fig9b",
        ids: &["fig9b"],
        ablation: false,
        run: |e, s| one(figs::fig9b_with(e, s)),
    },
    Experiment {
        name: "fig10",
        ids: &["fig10a", "fig10b"],
        ablation: false,
        run: |e, s| two(figs::fig10_with(e, s)),
    },
    Experiment {
        name: "fig11",
        ids: &["fig11a", "fig11b"],
        ablation: false,
        run: |e, s| two(figs::fig11_with(e, s)),
    },
    Experiment {
        name: "fig12",
        ids: &["fig12"],
        ablation: false,
        run: |e, s| one(figs::fig12_with(e, s)),
    },
    Experiment {
        name: "fig13a",
        ids: &["fig13a"],
        ablation: false,
        run: |e, s| one(figs::fig13a_with(e, s)),
    },
    Experiment {
        name: "fig13b",
        ids: &["fig13b"],
        ablation: false,
        run: |e, s| one(figs::fig13b_with(e, s)),
    },
    Experiment {
        name: "fig14",
        ids: &["fig14"],
        ablation: false,
        run: |e, s| one(figs::fig14_15_with(e, s, Placement::Uniform)),
    },
    Experiment {
        name: "fig15",
        ids: &["fig15"],
        ablation: false,
        run: |e, s| one(figs::fig14_15_with(e, s, Placement::Zipf { theta: 0.8 })),
    },
    Experiment {
        name: "abl_index",
        ids: &["abl_index"],
        ablation: true,
        run: |e, s| one(ablations::abl_index_with(e, s)),
    },
    Experiment {
        name: "abl_alloc",
        ids: &["abl_alloc"],
        ablation: true,
        run: |e, s| one(ablations::abl_alloc_with(e, s)),
    },
    Experiment {
        name: "abl_sectors",
        ids: &["abl_sectors"],
        ablation: true,
        run: |e, s| one(ablations::abl_sectors_with(e, s)),
    },
    Experiment {
        name: "abl_multires",
        ids: &["abl_multires"],
        ablation: true,
        run: |e, s| one(ablations::abl_multires_with(e, s)),
    },
    Experiment {
        name: "abl_smoothing",
        ids: &["abl_smoothing"],
        ablation: true,
        run: |e, s| one(ablations::abl_smoothing_with(e, s)),
    },
    Experiment {
        name: "abl_direction",
        ids: &["abl_direction"],
        ablation: true,
        run: |e, s| one(ablations::abl_direction_with(e, s)),
    },
    Experiment {
        name: "abl_store",
        ids: &["abl_store"],
        ablation: true,
        run: |e, s| one(ablations::abl_store_with(e, s)),
    },
];

/// Predicate deciding whether a group selector covers an experiment.
type GroupPred = fn(&Experiment) -> bool;

/// Group selectors: a name expanding to several experiments.
const GROUPS: &[(&str, GroupPred)] = &[
    ("fig9", |e| e.name.starts_with("fig9")),
    ("fig10", |e| e.name == "fig10"),
    ("fig13", |e| e.name.starts_with("fig13")),
    ("abl", |e| e.ablation),
];

fn selector_matches(exp: &Experiment, sel: &str) -> bool {
    if exp.name == sel || exp.ids.contains(&sel) {
        return true;
    }
    GROUPS.iter().any(|(g, pred)| *g == sel && pred(exp))
}

fn usage() -> String {
    let names: Vec<&str> = EXPERIMENTS
        .iter()
        .flat_map(|e| e.ids.iter().copied())
        .collect();
    format!(
        "usage: reproduce [--paper] [--ablations] [--jobs N | --serial] [SELECTOR...]\n\
         selectors: exact table ids ({}), experiment names (fig10, fig11,\n\
         fig14_15 parts as fig14/fig15), or groups (fig9, fig13, abl)",
        names.join(", ")
    )
}

struct Options {
    paper: bool,
    ablations: bool,
    jobs: Option<usize>,
    selectors: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        paper: false,
        ablations: false,
        jobs: None,
        selectors: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => opts.paper = true,
            "--ablations" => opts.ablations = true,
            "--serial" => opts.jobs = Some(1),
            "--jobs" => {
                let n = it
                    .next()
                    .ok_or_else(|| "--jobs needs a value".to_string())?;
                opts.jobs = Some(
                    n.parse::<usize>()
                        .map_err(|_| format!("--jobs: not a number: {n}"))?
                        .max(1),
                );
            }
            _ if a.starts_with("--jobs=") => {
                let n = &a["--jobs=".len()..];
                opts.jobs = Some(
                    n.parse::<usize>()
                        .map_err(|_| format!("--jobs: not a number: {n}"))?
                        .max(1),
                );
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag: {a}")),
            _ => opts.selectors.push(a.clone()),
        }
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("reproduce: {e}\n{}", usage());
            std::process::exit(2);
        }
    };

    // Resolve selectors to experiments — every selector must match
    // something, and an unmatched one is an error (a bare `fig1` used to
    // silently run fig10–fig15).
    let mut selected = vec![false; EXPERIMENTS.len()];
    if opts.selectors.is_empty() {
        for (i, exp) in EXPERIMENTS.iter().enumerate() {
            selected[i] = !exp.ablation || opts.ablations;
        }
    } else {
        for sel in &opts.selectors {
            let mut hit = false;
            for (i, exp) in EXPERIMENTS.iter().enumerate() {
                if selector_matches(exp, sel) {
                    selected[i] = true;
                    hit = true;
                }
            }
            if !hit {
                eprintln!("reproduce: no experiment matches '{sel}'\n{}", usage());
                std::process::exit(2);
            }
        }
        if opts.ablations {
            for (i, exp) in EXPERIMENTS.iter().enumerate() {
                if exp.ablation {
                    selected[i] = true;
                }
            }
        }
    }

    let scale = if opts.paper {
        Scale::paper()
    } else {
        Scale::quick()
    };
    let engine = match opts.jobs {
        Some(n) => Engine::new(n),
        None => Engine::auto(),
    };
    eprintln!(
        "reproduce: scale = {} ({} objects, {} ticks, {} speeds, {} seeds), {} worker(s)",
        if opts.paper { "paper" } else { "quick" },
        scale.objects_default,
        scale.ticks,
        scale.speeds.len(),
        scale.tour_seeds.len(),
        engine.jobs(),
    );

    std::fs::create_dir_all("results").expect("create results dir");
    // mar-lint: allow(D003) — progress display only; never enters results
    let t0 = std::time::Instant::now();
    let mut written = 0usize;
    for (i, exp) in EXPERIMENTS.iter().enumerate() {
        if !selected[i] {
            continue;
        }
        for table in (exp.run)(&engine, &scale) {
            // Persist before moving on: a panic in a later figure must not
            // lose this one.
            let path = format!("results/{}.csv", table.id);
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(table.to_csv().as_bytes()).expect("write csv");
            print!("{}", table.render());
            eprintln!(
                "  [{:6.1}s] {} done -> {}",
                t0.elapsed().as_secs_f64(),
                table.id,
                path
            );
            written += 1;
        }
    }
    eprintln!(
        "\nreproduce: {} tables written to results/ in {:.1}s ({} worker(s), {} cached scene(s))",
        written,
        t0.elapsed().as_secs_f64(),
        engine.jobs(),
        engine.cache().len(),
    );
}
