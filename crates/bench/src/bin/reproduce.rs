//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! cargo run -p mar-bench --release --bin reproduce              # all, quick scale
//! cargo run -p mar-bench --release --bin reproduce -- --paper   # full paper scale
//! cargo run -p mar-bench --release --bin reproduce -- fig8 fig12
//! ```
//!
//! Tables are printed to stdout and written as CSV to `results/`.

use mar_bench::figs;
use mar_bench::{Scale, Table};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();
    let scale = if paper {
        Scale::paper()
    } else {
        Scale::quick()
    };
    eprintln!(
        "reproduce: scale = {} ({} objects, {} ticks, {} speeds, {} seeds)",
        if paper { "paper" } else { "quick" },
        scale.objects_default,
        scale.ticks,
        scale.speeds.len(),
        scale.tour_seeds.len(),
    );

    let run = |id: &str| -> bool { wanted.is_empty() || wanted.iter().any(|w| id.starts_with(w)) };
    let t0 = std::time::Instant::now();
    let mut tables: Vec<Table> = Vec::new();
    if run("fig8") {
        tables.push(figs::fig8(&scale));
        progress(&tables, t0);
    }
    if run("fig9a") {
        tables.push(figs::fig9a(&scale));
        progress(&tables, t0);
    }
    if run("fig9b") {
        tables.push(figs::fig9b(&scale));
        progress(&tables, t0);
    }
    if run("fig10") {
        let (a, b) = figs::fig10(&scale);
        tables.push(a);
        tables.push(b);
        progress(&tables, t0);
    }
    if run("fig11") {
        let (a, b) = figs::fig11(&scale);
        tables.push(a);
        tables.push(b);
        progress(&tables, t0);
    }
    if run("fig12") {
        tables.push(figs::fig12(&scale));
        progress(&tables, t0);
    }
    if run("fig13a") {
        tables.push(figs::fig13a(&scale));
        progress(&tables, t0);
    }
    if run("fig13b") {
        tables.push(figs::fig13b(&scale));
        progress(&tables, t0);
    }
    if run("fig14") {
        tables.push(figs::fig14_15(&scale, mar_workload::Placement::Uniform));
        progress(&tables, t0);
    }
    if run("fig15") {
        tables.push(figs::fig14_15(
            &scale,
            mar_workload::Placement::Zipf { theta: 0.8 },
        ));
        progress(&tables, t0);
    }
    if args.iter().any(|a| a == "--ablations") || wanted.iter().any(|w| w.starts_with("abl")) {
        for table in mar_bench::ablations::all_ablations(&scale) {
            if wanted.is_empty()
                || wanted
                    .iter()
                    .any(|w| table.id.starts_with(w) || *w == "--ablations")
            {
                tables.push(table);
                progress(&tables, t0);
            }
        }
    }

    std::fs::create_dir_all("results").expect("create results dir");
    for t in &tables {
        print!("{}", t.render());
        let path = format!("results/{}.csv", t.id);
        let mut f = std::fs::File::create(&path).expect("create csv");
        f.write_all(t.to_csv().as_bytes()).expect("write csv");
    }
    eprintln!(
        "\nreproduce: {} tables written to results/ in {:.1}s",
        tables.len(),
        t0.elapsed().as_secs_f64()
    );
}

fn progress(tables: &[Table], t0: std::time::Instant) {
    eprintln!(
        "  [{:6.1}s] {} done",
        t0.elapsed().as_secs_f64(),
        tables.last().map(|t| t.id).unwrap_or("?")
    );
}
