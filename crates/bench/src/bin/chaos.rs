//! `chaos` — the fault-injection harness for the resilient retrieval
//! protocol (`mar-bench chaos`).
//!
//! Sweeps the serve-style multi-session workload over a fault grid via
//! [`mar_bench::chaos::run_chaos`] and writes `BENCH_chaos.json`
//! (see EXPERIMENTS.md for the schema):
//!
//! ```text
//! cargo run -p mar-bench --release --bin chaos              # full grid
//! cargo run -p mar-bench --release --bin chaos -- --jobs 4
//! cargo run -p mar-bench --release --bin chaos -- --smoke --out-dir target
//! ```
//!
//! The process exits non-zero when the chaos invariant fails — a faulted
//! session whose final resident set diverged from the fault-free run — so
//! CI turns red on any resilience regression. The transcript and every
//! aggregate are byte-identical for any `--jobs` value; the JSON records
//! the FNV-1a transcript fingerprint for cross-process comparison.

use mar_bench::chaos::{run_chaos_backend, ChaosConfig, ChaosReport};
use mar_bench::serve::{fnv1a64, ServeBackend};

struct Options {
    smoke: bool,
    paged: bool,
    jobs: usize,
    out_dir: String,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        paged: false,
        jobs: default_jobs(),
        out_dir: ".".to_string(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--paged" => opts.paged = true,
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--jobs needs a value".to_string())?;
                opts.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?;
            }
            "--out-dir" => {
                opts.out_dir = it
                    .next()
                    .ok_or_else(|| "--out-dir needs a value".to_string())?
                    .clone();
            }
            _ if a.starts_with("--jobs=") => {
                let v = &a["--jobs=".len()..];
                opts.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?;
            }
            _ if a.starts_with("--out-dir=") => {
                opts.out_dir = a["--out-dir=".len()..].to_string();
            }
            other => {
                return Err(format!(
                    "unknown argument: {other}\nusage: chaos [--smoke] [--paged] [--jobs N] [--out-dir DIR]"
                ))
            }
        }
    }
    Ok(opts)
}

fn write_chaos_json(path: &str, mode: &str, jobs: usize, r: &ChaosReport) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mar-bench-chaos/1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"sessions\": {},\n", r.sessions));
    out.push_str(&format!("  \"ticks\": {},\n", r.ticks));
    out.push_str(&format!("  \"invariant_ok\": {},\n", r.invariant_ok));
    out.push_str(&format!("  \"elapsed_s\": {:.6},\n", r.elapsed_s));
    out.push_str("  \"grid\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"loss_pct\": {}, \"drop_every\": {}, \"retries\": {}, \"drops\": {}, \
             \"resumed\": {}, \"reconnects\": {}, \"degraded_ticks\": {}, \"max_level\": {}, \
             \"bytes\": {:.1}, \"link_time_s\": {:.3}, \"ideal_time_s\": {:.3}, \
             \"goodput\": {:.4}}}{}\n",
            p.loss * 100.0,
            p.drop_every,
            p.retries,
            p.drops,
            p.resumed,
            p.reconnects,
            p.degraded_ticks,
            p.max_level,
            p.bytes,
            p.link_time_s,
            p.ideal_time_s,
            p.goodput(),
            if i + 1 < r.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"transcript_fnv64\": \"{:016x}\"\n",
        fnv1a64(&r.transcript)
    ));
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mode = if opts.smoke { "smoke" } else { "full" };
    let cfg = if opts.smoke {
        ChaosConfig::smoke(opts.jobs)
    } else {
        ChaosConfig::full(opts.jobs)
    };
    // Out-of-core mode replays the same grid over a store-backed core —
    // the transcript must not change (DESIGN.md §15), only the backend.
    let store_path = std::env::temp_dir().join(format!("mar-chaos-{}.pages", std::process::id()));
    let backend = if opts.paged {
        ServeBackend::Paged {
            path: store_path.clone(),
            budget_bytes: 256 * 1024,
            policy: mar_core::CachePolicy::MotionAware,
        }
    } else {
        ServeBackend::Ram
    };
    eprintln!(
        "chaos: {mode} run ({} sessions x {} ticks, {} grid points, jobs={}, backend={})",
        cfg.sessions,
        cfg.ticks,
        cfg.grid.len(),
        cfg.jobs,
        if opts.paged { "paged" } else { "ram" }
    );

    let report = run_chaos_backend(&cfg, &backend);
    if opts.paged {
        let _ = std::fs::remove_file(&store_path);
    }
    for p in &report.points {
        eprintln!(
            "chaos: loss {:>4.1}% drop_every {:>3}: {} retries, {} drops ({} resumed), \
             {} degraded ticks, goodput {:.3}",
            p.loss * 100.0,
            p.drop_every,
            p.retries,
            p.drops,
            p.resumed,
            p.degraded_ticks,
            p.goodput()
        );
    }
    eprintln!(
        "chaos: {} in {:.3} s wall clock",
        if report.invariant_ok {
            "invariant OK at every grid point"
        } else {
            "INVARIANT VIOLATED"
        },
        report.elapsed_s
    );

    let path = format!("{}/BENCH_chaos.json", opts.out_dir);
    if let Err(e) = write_chaos_json(&path, mode, opts.jobs, &report) {
        eprintln!("chaos: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "chaos: wrote {path} (transcript fnv64 {:016x})",
        fnv1a64(&report.transcript)
    );
    if !report.invariant_ok {
        std::process::exit(1);
    }
}
