//! `fleet` — the sharded serving tier harness (`mar-bench fleet`).
//!
//! Sweeps the multi-session tour workload over a shard-failure grid via
//! [`mar_bench::fleet::run_fleet`] and writes `BENCH_fleet.json`
//! (see EXPERIMENTS.md for the schema):
//!
//! ```text
//! cargo run -p mar-bench --release --bin fleet              # full fleet
//! cargo run -p mar-bench --release --bin fleet -- --jobs 4
//! cargo run -p mar-bench --release --bin fleet -- --smoke --out-dir target
//! ```
//!
//! The process exits non-zero when the shard-kill invariant fails — a
//! session errored during an outage, availability hit zero while an
//! outage was active, or a post-recovery resident set diverged from the
//! outage-free run — so CI turns red on any failover regression. The
//! transcript and every deterministic aggregate are byte-identical for
//! any `--jobs` value; the JSON records the FNV-1a transcript fingerprint
//! for cross-process comparison. Throughput and the p50/p99 latencies are
//! wall-clock measurements and vary run to run.

use mar_bench::fleet::{run_fleet, FleetBenchConfig, FleetReport};
use mar_bench::serve::fnv1a64;

struct Options {
    smoke: bool,
    jobs: usize,
    out_dir: String,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        jobs: default_jobs(),
        out_dir: ".".to_string(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--jobs needs a value".to_string())?;
                opts.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?;
            }
            "--out-dir" => {
                opts.out_dir = it
                    .next()
                    .ok_or_else(|| "--out-dir needs a value".to_string())?
                    .clone();
            }
            _ if a.starts_with("--jobs=") => {
                let v = &a["--jobs=".len()..];
                opts.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?;
            }
            _ if a.starts_with("--out-dir=") => {
                opts.out_dir = a["--out-dir=".len()..].to_string();
            }
            other => {
                return Err(format!(
                    "unknown argument: {other}\nusage: fleet [--smoke] [--jobs N] [--out-dir DIR]"
                ))
            }
        }
    }
    Ok(opts)
}

fn write_fleet_json(path: &str, mode: &str, jobs: usize, r: &FleetReport) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mar-bench-fleet/1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"sessions\": {},\n", r.sessions));
    out.push_str(&format!("  \"ticks\": {},\n", r.ticks));
    out.push_str(&format!("  \"shards\": {},\n", r.shards));
    out.push_str(&format!("  \"invariant_ok\": {},\n", r.invariant_ok));
    out.push_str(&format!("  \"elapsed_s\": {:.6},\n", r.elapsed_s));
    out.push_str("  \"grid\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"replicas\": {}, \"period\": {}, \"outage\": {}, \"queries\": {}, \
             \"tasks\": {}, \"replica_promotions\": {}, \"degraded_subqueries\": {}, \
             \"unserved_subqueries\": {}, \"outage_queries\": {}, \
             \"complete_outage_queries\": {}, \"availability\": {:.6}, \"bytes\": {:.1}, \
             \"io\": {}, \"queries_per_sec\": {:.1}, \"p50_latency_us\": {:.1}, \
             \"p99_latency_us\": {:.1}}}{}\n",
            p.point.replicas,
            p.point.period,
            p.point.outage,
            p.queries,
            p.tasks,
            p.replica_promotions,
            p.degraded_subqueries,
            p.unserved_subqueries,
            p.outage_queries,
            p.complete_outage_queries,
            p.availability(),
            p.bytes,
            p.io,
            p.queries_per_sec(),
            p.latency_ns(0.5) as f64 / 1000.0,
            p.latency_ns(0.99) as f64 / 1000.0,
            if i + 1 < r.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"transcript_fnv64\": \"{:016x}\"\n",
        fnv1a64(&r.transcript)
    ));
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mode = if opts.smoke { "smoke" } else { "full" };
    let cfg = if opts.smoke {
        FleetBenchConfig::smoke(opts.jobs)
    } else {
        FleetBenchConfig::full(opts.jobs)
    };
    eprintln!(
        "fleet: {mode} run ({} sessions x {} ticks over {} shards, {} grid points, jobs={})",
        cfg.sessions,
        cfg.ticks,
        cfg.shards(),
        cfg.grid.len(),
        cfg.jobs
    );

    let report = run_fleet(&cfg);
    for p in &report.points {
        eprintln!(
            "fleet: replicas={} period={:>2}: {} queries ({:.0} q/s, p50 {:.0} us, p99 {:.0} us), \
             {} promotions, {} degraded, availability {:.4}",
            p.point.replicas,
            p.point.period,
            p.queries,
            p.queries_per_sec(),
            p.latency_ns(0.5) as f64 / 1000.0,
            p.latency_ns(0.99) as f64 / 1000.0,
            p.replica_promotions,
            p.degraded_subqueries,
            p.availability()
        );
    }
    eprintln!(
        "fleet: {} in {:.3} s wall clock",
        if report.invariant_ok {
            "invariant OK at every grid point"
        } else {
            "INVARIANT VIOLATED"
        },
        report.elapsed_s
    );

    let path = format!("{}/BENCH_fleet.json", opts.out_dir);
    if let Err(e) = write_fleet_json(&path, mode, opts.jobs, &report) {
        eprintln!("fleet: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "fleet: wrote {path} (transcript fnv64 {:016x})",
        fnv1a64(&report.transcript)
    );
    if !report.invariant_ok {
        std::process::exit(1);
    }
}
