//! The deterministic parallel sweep engine.
//!
//! Every figure of the evaluation is a sweep over independent
//! `(speed, tour seed, dataset size, …)` points, and every point is a
//! deterministic simulation (DESIGN.md §5). This module exploits that:
//!
//! * [`Engine::run`] fans a figure's sweep points out across scoped worker
//!   threads (`std::thread::scope` — no external thread-pool dependency,
//!   per DESIGN.md §6). Each worker owns its own mutable context (for most
//!   figures a [`mar_core::Server`] built over a shared immutable
//!   [`Scene`]) and pulls point indices from an atomic counter. Results
//!   are written into per-index slots and reassembled in sweep order, so
//!   the output is **byte-identical** regardless of worker count or
//!   scheduling — `jobs = 1` and `jobs = N` produce the same tables
//!   (enforced by `crates/bench/tests/parallel.rs`).
//! * [`SceneCache`] memoises generated scenes by
//!   `(objects, placement, levels, seed, target bytes)` so figures that
//!   sweep dataset sizes (fig9b, fig13b) or share the default dataset
//!   (fig8–fig14) stop regenerating identical scenes.
//!
//! Correctness of per-worker servers rests on a property the server tests
//! pin down: sessions are independent, so a simulation that opens its own
//! session computes the same numbers on a fresh server as on one that has
//! served other sweep points before.

use crate::Scale;
use mar_workload::{Placement, Scene, SceneConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key identifying a generated scene. `theta` and the byte target
/// are stored as IEEE bit patterns so the key can be compared exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SceneKey {
    /// Object count.
    pub objects: usize,
    /// Subdivision levels.
    pub levels: usize,
    /// Scene seed.
    pub seed: u64,
    /// Placement discriminant: `None` = uniform, `Some(bits)` = Zipf with
    /// `theta = f64::from_bits(bits)`.
    pub zipf_theta_bits: Option<u64>,
    /// `target_bytes` as bits.
    pub target_bytes_bits: u64,
}

impl SceneKey {
    /// The key for `objects` objects under `scale`'s parameters.
    pub fn new(scale: &Scale, objects: usize, placement: Placement) -> Self {
        Self {
            objects,
            levels: scale.levels,
            seed: scale.scene_seed,
            zipf_theta_bits: match placement {
                Placement::Uniform => None,
                Placement::Zipf { theta } => Some(theta.to_bits()),
            },
            target_bytes_bits: (objects as f64 * scale.bytes_per_object).to_bits(),
        }
    }
}

/// Memoises [`Scene::generate`] results. Generation is deterministic, so a
/// cached scene is indistinguishable from a fresh one (enforced by
/// `crates/bench/tests/parallel.rs`).
#[derive(Debug, Default)]
pub struct SceneCache {
    scenes: Mutex<BTreeMap<SceneKey, Arc<Scene>>>,
}

impl SceneCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the scene for the key, generating it on first use.
    ///
    /// The build runs under the cache lock: callers request scenes from
    /// the coordinating thread before fanning out, so there is no
    /// contention to optimise for, and holding the lock keeps a racing
    /// second builder from wasting a multi-second generation.
    pub fn scene(&self, scale: &Scale, objects: usize, placement: Placement) -> Arc<Scene> {
        let key = SceneKey::new(scale, objects, placement);
        // mar-lint: allow(D004) — poisoning implies a worker already panicked; propagate
        let mut scenes = self.scenes.lock().expect("scene cache poisoned");
        Arc::clone(scenes.entry(key).or_insert_with(|| {
            let mut cfg = SceneConfig::paper(objects, scale.scene_seed);
            cfg.levels = scale.levels;
            cfg.target_bytes = objects as f64 * scale.bytes_per_object;
            cfg.placement = placement;
            Arc::new(Scene::generate(cfg))
        }))
    }

    /// Number of distinct scenes currently cached.
    pub fn len(&self) -> usize {
        // mar-lint: allow(D004) — poisoning implies a worker already panicked; propagate
        self.scenes.lock().expect("scene cache poisoned").len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The sweep engine: a worker count plus the scene cache shared by every
/// figure run through it.
#[derive(Debug, Default)]
pub struct Engine {
    jobs: usize,
    cache: SceneCache,
}

impl Engine {
    /// An engine running sweeps on `jobs` worker threads (`0` and `1` both
    /// mean serial, in-thread execution).
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            cache: SceneCache::new(),
        }
    }

    /// A serial engine (still scene-cached).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// An engine sized to the machine:
    /// [`std::thread::available_parallelism`] workers.
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The engine's scene cache.
    pub fn cache(&self) -> &SceneCache {
        &self.cache
    }

    /// Cached scene lookup (see [`SceneCache::scene`]).
    pub fn scene(&self, scale: &Scale, objects: usize, placement: Placement) -> Arc<Scene> {
        self.cache.scene(scale, objects, placement)
    }

    /// Runs one job per sweep point and returns the results **in point
    /// order**, regardless of the execution schedule.
    ///
    /// `make_ctx` builds one mutable context per worker (e.g. a `Server`
    /// over the figure's shared scene); `run` computes one point. With
    /// `jobs <= 1` everything runs inline on the calling thread with a
    /// single context — the deterministic reference the parallel path must
    /// reproduce byte-for-byte.
    ///
    /// # Panics
    /// A panicking job aborts the whole sweep: the scoped join re-raises
    /// the worker's panic on this thread.
    pub fn run<P, T, C>(
        &self,
        points: Vec<P>,
        make_ctx: impl Fn() -> C + Sync,
        run: impl Fn(&mut C, &P) -> T + Sync,
    ) -> Vec<T>
    where
        P: Sync,
        T: Send,
    {
        let workers = self.jobs.min(points.len());
        if workers <= 1 {
            let mut ctx = make_ctx();
            return points.iter().map(|p| run(&mut ctx, p)).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = points.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ctx = make_ctx();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(i) else { break };
                        let result = run(&mut ctx, point);
                        // mar-lint: allow(D004) — poisoning implies a sibling worker panicked
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    // mar-lint: allow(D004) — poisoning implies a worker panicked
                    .expect("result slot poisoned")
                    // mar-lint: allow(D004) — the scoped fan-out covers every index
                    .expect("every sweep point produced a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_point_order() {
        let eng = Engine::new(4);
        let points: Vec<usize> = (0..100).collect();
        let out = eng.run(points, || (), |_, &p| p * 2);
        assert_eq!(out, (0..100).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |_: &mut (), &p: &u64| -> u64 {
            // A little deterministic arithmetic per point.
            (0..1000u64).fold(p, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let points: Vec<u64> = (0..64).collect();
        let serial = Engine::serial().run(points.clone(), || (), work);
        let parallel = Engine::new(8).run(points, || (), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn each_worker_gets_its_own_context() {
        // Contexts count the jobs they ran; totals must cover every point
        // exactly once even though each worker reuses its own context.
        let eng = Engine::new(3);
        let seen = Mutex::new(Vec::new());
        let out = eng.run(
            (0..50).collect(),
            || 0usize,
            |count, &p: &i32| {
                *count += 1;
                seen.lock().unwrap().push(p);
                p
            },
        );
        assert_eq!(out.len(), 50);
        let mut all = seen.lock().unwrap().clone();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep_is_fine() {
        let eng = Engine::new(8);
        let out: Vec<u32> = eng.run(Vec::<u32>::new(), || (), |_, &p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn scene_cache_returns_the_same_arc() {
        let eng = Engine::serial();
        let scale = crate::Scale::quick();
        let a = eng.scene(&scale, 8, Placement::Uniform);
        let b = eng.scene(&scale, 8, Placement::Uniform);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(eng.cache().len(), 1);
        let c = eng.scene(&scale, 8, Placement::Zipf { theta: 0.8 });
        assert!(!Arc::ptr_eq(&a, &c), "different placement, different scene");
        assert_eq!(eng.cache().len(), 2);
    }
}
