//! `mar-bench chaos` — the fault-injection harness for the resilient
//! retrieval protocol.
//!
//! Replays the serve-style multi-session tour workload, but pushes every
//! query through a seeded [`mar_link::FaultyLink`] and the
//! [`mar_core::ResilientClient`] protocol, sweeping a fault grid of
//! (packet-loss probability, scheduled-drop period). The harness proves
//! the protocol's central invariant at every grid point:
//!
//! > after the end-of-tour repair pass, a faulted session's resident
//! > coefficient set **over the final frame at the final resolution band**
//! > is byte-identical to the fault-free session's.
//!
//! Retries, drops and degradation may reshape *when* data moves — never
//! *what* the client ends up holding where it matters.
//!
//! Determinism mirrors `mar-bench serve` (DESIGN.md §10): each session's
//! fault stream is keyed by its client index `k`, not by the server-minted
//! session id, so the `connect()` order under concurrency is unobservable;
//! sessions fan out over the [`Engine`], whose results come back in point
//! order; `jobs = 1` and `jobs = N` transcripts are byte-identical (pinned
//! by `crates/bench/tests/chaos.rs`). Wall-clock timing is reported but
//! never enters the transcript.

use crate::engine::Engine;
use crate::serve::{fnv1a64, ServeBackend};
use crate::{figs, Scale};
use mar_core::{
    LinearSpeedMap, ResilienceMetrics, ResilientClient, ResilientPolicy, SceneIndexData, Server,
    ServerCore, SmoothedSpeed, SpeedResolutionMap, WaveletIndex,
};
use mar_link::{FaultConfig, FaultPlan, FaultyLink, LinkConfig};
use mar_workload::{frame_at, pedestrian_tour, tram_tour, Placement, TourConfig};
use std::sync::Arc;

/// One fault-grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Per-request loss probability.
    pub loss: f64,
    /// Scheduled session-drop period in link requests (`0` = never).
    pub drop_every: u64,
}

/// Chaos-workload parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Concurrent client sessions per grid point.
    pub sessions: usize,
    /// Ticks each session replays.
    pub ticks: usize,
    /// Objects in the generated scene.
    pub objects: usize,
    /// Subdivision levels per object.
    pub levels: usize,
    /// Query frame fraction of the space.
    pub frame_frac: f64,
    /// Worker threads (`<= 1` = serial reference execution).
    pub jobs: usize,
    /// Base tour seed; session `k` tours with seed `base + k`.
    pub tour_seed: u64,
    /// Fault-plan seed shared by every grid point (streams differ by `k`).
    pub fault_seed: u64,
    /// The fault grid. The first point must be fault-free — it is the
    /// reference every other point's resident sets are compared against.
    pub grid: Vec<GridPoint>,
}

impl ChaosConfig {
    /// The full measurement grid: 16 sessions × 240 ticks under
    /// loss ∈ {0, 1, 5, 20 %} with periodic transport drops.
    pub fn full(jobs: usize) -> Self {
        Self {
            sessions: 16,
            ticks: 240,
            objects: 40,
            levels: 3,
            frame_frac: 0.05,
            jobs,
            tour_seed: 901,
            fault_seed: 4242,
            grid: vec![
                GridPoint {
                    loss: 0.0,
                    drop_every: 0,
                },
                GridPoint {
                    loss: 0.01,
                    drop_every: 60,
                },
                GridPoint {
                    loss: 0.05,
                    drop_every: 60,
                },
                GridPoint {
                    loss: 0.20,
                    drop_every: 60,
                },
            ],
        }
    }

    /// A seconds-scale CI smoke grid.
    pub fn smoke(jobs: usize) -> Self {
        Self {
            sessions: 4,
            ticks: 40,
            objects: 12,
            levels: 2,
            frame_frac: 0.1,
            jobs,
            tour_seed: 901,
            fault_seed: 4242,
            grid: vec![
                GridPoint {
                    loss: 0.0,
                    drop_every: 0,
                },
                GridPoint {
                    loss: 0.05,
                    drop_every: 15,
                },
                GridPoint {
                    loss: 0.20,
                    drop_every: 15,
                },
            ],
        }
    }
}

/// What one grid point measured, summed over its sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPointReport {
    /// The injected loss probability.
    pub loss: f64,
    /// The injected drop period (`0` = never).
    pub drop_every: u64,
    /// Lost-request retries.
    pub retries: u64,
    /// Transport drops survived.
    pub drops: u64,
    /// Drops healed by `Server::resume` (filter retained).
    pub resumed: u64,
    /// Fresh reconnects (resume failed).
    pub reconnects: u64,
    /// Ticks that ran at a degraded resolution.
    pub degraded_ticks: u64,
    /// Highest degradation level any session reached.
    pub max_level: u32,
    /// Payload bytes delivered.
    pub bytes: f64,
    /// Simulated link seconds spent (incl. waits, backoff, reconnects).
    pub link_time_s: f64,
    /// Eq. 1 fault-free link seconds for the same payloads.
    pub ideal_time_s: f64,
    /// Per-session fingerprint of the resident set over the final frame at
    /// the final band — equal across grid points iff the invariant holds.
    pub fingerprints: Vec<u64>,
}

impl ChaosPointReport {
    /// Goodput relative to the Eq. 1 fault-free ideal (`1.0` on a clean
    /// link, lower as faults burn time on retries and waits).
    pub fn goodput(&self) -> f64 {
        if self.link_time_s > 0.0 {
            self.ideal_time_s / self.link_time_s
        } else {
            1.0
        }
    }
}

/// What one chaos run produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Sessions per grid point.
    pub sessions: usize,
    /// Ticks per session.
    pub ticks: usize,
    /// One report per grid point, in grid order.
    pub points: Vec<ChaosPointReport>,
    /// The deterministic per-grid-point, per-session, per-tick transcript.
    pub transcript: String,
    /// Whether every grid point's resident sets matched the fault-free
    /// reference (grid point 0).
    pub invariant_ok: bool,
    /// Total wall-clock time of the replay, in seconds.
    pub elapsed_s: f64,
}

/// What one session's worker brings home.
struct SessionOutcome {
    rows: String,
    metrics: ResilienceMetrics,
    fingerprint: u64,
    covered: bool,
    session: u64,
}

/// Runs the chaos workload. The transcript, every aggregate and every
/// fingerprint are identical for any `cfg.jobs`; only `elapsed_s` varies.
///
/// # Panics
/// Panics when the workload itself is miswired (empty grid, faulted grid
/// point 0) — configuration bugs, not runtime faults.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    run_chaos_backend(cfg, &ServeBackend::Ram)
}

/// [`run_chaos`] against a chosen index backend. The transcript, every
/// aggregate and every fingerprint are backend-independent — the paged
/// store answers byte-identically to RAM (DESIGN.md §15), so the chaos
/// invariant carries over to the out-of-core server unchanged (pinned by
/// this module's tests).
///
/// # Panics
/// Panics on a miswired workload (see [`run_chaos`]) or when the page
/// file backing a [`ServeBackend::Paged`] run cannot be written.
pub fn run_chaos_backend(cfg: &ChaosConfig, backend: &ServeBackend) -> ChaosReport {
    assert!(
        matches!(cfg.grid.first(), Some(p) if p.loss == 0.0 && p.drop_every == 0),
        "grid point 0 must be the fault-free reference"
    );
    let mut scale = Scale::quick();
    scale.objects_default = cfg.objects;
    scale.levels = cfg.levels;
    let scene = figs::build_scene(&scale, cfg.objects, Placement::Uniform);
    // One immutable core shared by every grid point's fresh server: only
    // session (filter) state must not leak between grid points, and that
    // lives in the `Server`, not the core.
    let core = match backend {
        ServeBackend::Ram => {
            let data = Arc::new(SceneIndexData::build(&scene));
            let index = Arc::new(WaveletIndex::build_jobs(&data, cfg.jobs));
            ServerCore::from_parts(data, index)
        }
        ServeBackend::Paged {
            path,
            budget_bytes,
            policy,
        } => ServerCore::new_paged(&scene, path, *budget_bytes, *policy)
            // mar-lint: allow(D004) — the harness cannot proceed without its store file; surface the I/O error
            .expect("chaos: cannot build the page-file backend"),
    };
    let engine = Engine::new(cfg.jobs);
    let speeds = [0.1, 0.3, 0.5, 0.7, 0.9];

    let mut transcript = String::from(
        "loss_pct,drop_every,session,tick,coeffs,new_objects,bytes,io,retries,drops,level,time_s\n",
    );
    let mut points = Vec::with_capacity(cfg.grid.len());
    let mut invariant_ok = true;
    // mar-lint: allow(D003) — wall-clock for the throughput report only; never enters the transcript
    let t0 = std::time::Instant::now();

    for gp in &cfg.grid {
        // A fresh server per grid point over the same immutable core, so
        // filter state can never leak between grid points.
        let server = Server::from_core(core.clone());
        let fault = if gp.loss == 0.0 && gp.drop_every == 0 {
            FaultConfig::none(cfg.fault_seed)
        } else {
            FaultConfig::hostile(cfg.fault_seed, gp.loss, gp.drop_every)
        };
        let loss_pct = gp.loss * 100.0;
        let outcomes: Vec<SessionOutcome> = engine.run(
            (0..cfg.sessions).collect(),
            || (),
            |_, &k| {
                let tc = TourConfig::new(
                    scene.config.space,
                    cfg.ticks,
                    cfg.tour_seed + k as u64,
                    speeds[k % speeds.len()],
                );
                let tour = if k % 2 == 0 {
                    tram_tour(&tc)
                } else {
                    pedestrian_tour(&tc)
                };
                // The fault stream is keyed by the client index k, not the
                // server-minted session id: the connect order under
                // concurrency must be unobservable.
                let plan = FaultPlan::new(fault)
                    // mar-lint: allow(D004) — the grid is validated static configuration
                    .expect("chaos fault grid is valid");
                let link = FaultyLink::new(LinkConfig::paper(), plan, k as u64)
                    // mar-lint: allow(D004) — LinkConfig::paper() is valid by construction
                    .expect("paper link config is valid");
                let mut client = ResilientClient::connect(
                    &server,
                    LinearSpeedMap,
                    link,
                    ResilientPolicy::default(),
                );
                let mut smooth = SmoothedSpeed::default();
                let mut rows = String::new();
                let mut last = None;
                for (tick, s) in tour.samples.iter().enumerate() {
                    let frame = frame_at(&scene.config.space, &s.pos, cfg.frame_frac);
                    let speed = smooth.update(s.speed);
                    let out = client
                        .tick(&server, frame, speed)
                        // mar-lint: allow(D004) — loss < 1 makes GaveUp unreachable (P ≈ loss^64); a hit means the protocol livelocked, which this harness exists to catch
                        .expect("resilient tick must terminate");
                    rows.push_str(&format!(
                        "{loss_pct},{},{k},{tick},{},{},{},{},{},{},{},{}\n",
                        gp.drop_every,
                        out.result.coeffs,
                        out.result.new_objects,
                        out.result.bytes,
                        out.result.io,
                        out.retries,
                        out.drops,
                        out.degrade_level,
                        out.tick_time_s,
                    ));
                    last = Some((frame, speed));
                }
                let (final_frame, final_speed) =
                    // mar-lint: allow(D004) — tours always have >= 1 sample
                    last.expect("tour is non-empty");
                // End-of-tour repair pass: drain degradation, refetch the
                // final frame at the full band for the final speed.
                let fin = client
                    .finish(&server, final_frame, final_speed)
                    // mar-lint: allow(D004) — same termination argument as tick
                    .expect("finish must terminate");
                rows.push_str(&format!(
                    "{loss_pct},{},{k},finish,{},{},{},{},{},{},{},{}\n",
                    gp.drop_every,
                    fin.result.coeffs,
                    fin.result.new_objects,
                    fin.result.bytes,
                    fin.result.io,
                    fin.retries,
                    fin.drops,
                    fin.degrade_level,
                    fin.tick_time_s,
                ));
                // The invariant's object: the resident set over the final
                // frame at the final (undegraded) band.
                let band = LinearSpeedMap.band_for(final_speed);
                let (want, _) = server.query_stateless(&final_frame, band);
                let sent = server
                    .session_sent_set(client.session())
                    // mar-lint: allow(D004) — the client's session is live by construction
                    .expect("chaos session is live");
                let covered = want.iter().all(|id| sent.binary_search(id).is_ok());
                let mut fp_input = String::new();
                for id in want.iter().filter(|id| sent.binary_search(id).is_ok()) {
                    fp_input.push_str(&format!("{}:{};", id.object, id.coeff));
                }
                SessionOutcome {
                    rows,
                    metrics: *client.metrics(),
                    fingerprint: fnv1a64(&fp_input),
                    covered,
                    session: client.session(),
                }
            },
        );

        let mut report = ChaosPointReport {
            loss: gp.loss,
            drop_every: gp.drop_every,
            retries: 0,
            drops: 0,
            resumed: 0,
            reconnects: 0,
            degraded_ticks: 0,
            max_level: 0,
            bytes: 0.0,
            link_time_s: 0.0,
            ideal_time_s: 0.0,
            fingerprints: Vec::with_capacity(cfg.sessions),
        };
        for o in &outcomes {
            transcript.push_str(&o.rows);
            report.retries += o.metrics.retries;
            report.drops += o.metrics.drops;
            report.resumed += o.metrics.resumed;
            report.reconnects += o.metrics.reconnects;
            report.degraded_ticks += o.metrics.degraded_ticks;
            report.max_level = report.max_level.max(o.metrics.max_level);
            report.bytes += o.metrics.bytes;
            report.link_time_s += o.metrics.link_time_s;
            report.ideal_time_s += o.metrics.ideal_time_s;
            report.fingerprints.push(o.fingerprint);
            invariant_ok &= o.covered;
        }
        // Against the fault-free reference: identical resident sets.
        if let Some(reference) = points.first() {
            let reference: &ChaosPointReport = reference;
            invariant_ok &= reference.fingerprints == report.fingerprints;
        }
        points.push(report);

        // Tear the grid point's sessions down; filter state must go too.
        for o in &outcomes {
            server
                .disconnect(o.session)
                // mar-lint: allow(D004) — each worker's final session is live until this teardown
                .expect("chaos session vanished");
        }
        assert_eq!(server.session_count(), 0, "all chaos sessions disconnected");
        assert_eq!(
            server.resident_filter_entries(),
            0,
            "disconnect must release filter state"
        );
    }

    ChaosReport {
        sessions: cfg.sessions,
        ticks: cfg.ticks,
        points,
        transcript,
        invariant_ok,
        elapsed_s: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(jobs: usize) -> ChaosConfig {
        ChaosConfig {
            sessions: 3,
            ticks: 12,
            objects: 8,
            levels: 2,
            frame_frac: 0.15,
            jobs,
            tour_seed: 901,
            fault_seed: 4242,
            grid: vec![
                GridPoint {
                    loss: 0.0,
                    drop_every: 0,
                },
                GridPoint {
                    loss: 0.2,
                    drop_every: 5,
                },
            ],
        }
    }

    #[test]
    fn chaos_invariant_holds_under_heavy_faults() {
        let r = run_chaos(&tiny(1));
        assert!(r.invariant_ok, "resident sets diverged from fault-free run");
        assert_eq!(r.points.len(), 2);
        let faulted = &r.points[1];
        assert!(faulted.retries > 0, "20% loss must retry");
        assert!(faulted.drops > 0, "drop_every=5 must drop");
        assert_eq!(faulted.drops, faulted.resumed, "drops heal via resume");
        assert!(faulted.goodput() < 1.0, "faults must cost time");
        let clean = &r.points[0];
        assert_eq!(clean.retries, 0);
        assert_eq!(clean.drops, 0);
        assert!((clean.goodput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transcript_is_jobs_invariant() {
        let serial = run_chaos(&tiny(1));
        let parallel = run_chaos(&tiny(3));
        assert_eq!(serial.transcript, parallel.transcript);
        assert_eq!(fnv1a64(&serial.transcript), fnv1a64(&parallel.transcript));
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a, b, "grid-point aggregates must be jobs-invariant");
        }
    }

    #[test]
    fn transcript_shape() {
        let r = run_chaos(&tiny(1));
        // Header + per grid point: sessions × (ticks + finish row).
        assert_eq!(r.transcript.lines().count(), 1 + 2 * 3 * (12 + 1));
        assert!(r.transcript.starts_with(
            "loss_pct,drop_every,session,tick,coeffs,new_objects,bytes,io,retries,drops,level,time_s\n"
        ));
    }

    #[test]
    fn chaos_invariant_holds_on_the_paged_backend() {
        let path = std::env::temp_dir().join(format!(
            "mar-bench-chaos-paged-{}.pages",
            std::process::id()
        ));
        let ram = run_chaos(&tiny(1));
        let paged = run_chaos_backend(
            &tiny(1),
            &ServeBackend::Paged {
                path: path.clone(),
                budget_bytes: 64 * 1024,
                policy: mar_core::CachePolicy::MotionAware,
            },
        );
        let _ = std::fs::remove_file(&path);
        assert!(paged.invariant_ok, "chaos invariant must hold out-of-core");
        assert_eq!(
            ram.transcript, paged.transcript,
            "the paged store must answer byte-identically to RAM"
        );
        for (a, b) in ram.points.iter().zip(&paged.points) {
            assert_eq!(a, b, "grid-point aggregates must be backend-invariant");
        }
    }

    #[test]
    #[should_panic(expected = "fault-free reference")]
    fn grid_must_lead_with_the_fault_free_point() {
        let mut cfg = tiny(1);
        cfg.grid[0].loss = 0.1;
        run_chaos(&cfg);
    }
}
