//! `mar-bench fleet` — the sharded serving tier under shard failure.
//!
//! Replays the serve-style multi-session tour workload against a
//! [`mar_core::FleetServer`]: the ground plane is partitioned over S
//! shard cores, every window query is scatter-gathered by the stateless
//! router, and a seeded [`mar_link::ShardOutagePlan`] kills whole shards
//! on a pure schedule. The harness measures throughput, per-query wall
//! latency (p50/p99) and **availability** — the fraction of outage-tick
//! queries still served at full fidelity — and proves the tier's central
//! invariant at every grid point:
//!
//! > clients are **never** errored during a shard outage (replica
//! > promotion or degraded neighbour service always answers), and after
//! > the shard recovers, every session's resident set **over the final
//! > frame at the final band** is byte-identical to the fault-free run's.
//!
//! Determinism mirrors `mar-bench chaos` (DESIGN.md §10): the outage
//! schedule is keyed by tick, sessions tour with seeds keyed by client
//! index `k`, results come back in point order, and the transcript is
//! byte-identical at any `jobs`. Wall-clock latency is reported but never
//! enters the transcript.

use crate::engine::Engine;
use crate::serve::fnv1a64;
use crate::{figs, Scale};
use mar_core::{
    FleetConfig, FleetHealth, FleetServer, FramePlanner, LinearSpeedMap, SceneIndexData,
    SmoothedSpeed, SpeedResolutionMap,
};
use mar_link::ShardOutagePlan;
use mar_workload::{frame_at, pedestrian_tour, tram_tour, Placement, TourConfig};
use std::sync::Arc;

/// One fleet-grid point: a replica policy plus an outage schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetGridPoint {
    /// Whether every shard has a promotable replica.
    pub replicas: bool,
    /// Outage event period in ticks (`0` = no outages — the reference).
    pub period: u64,
    /// Ticks a victim shard stays down within each event.
    pub outage: u64,
}

/// Fleet-workload parameters.
#[derive(Debug, Clone)]
pub struct FleetBenchConfig {
    /// Concurrent client sessions per grid point.
    pub sessions: usize,
    /// Ticks each session replays.
    pub ticks: usize,
    /// Shard grid columns.
    pub nx: u32,
    /// Shard grid rows.
    pub ny: u32,
    /// Objects in the generated scene.
    pub objects: usize,
    /// Subdivision levels per object.
    pub levels: usize,
    /// Query frame fraction of the space.
    pub frame_frac: f64,
    /// Worker threads (`<= 1` = serial reference execution).
    pub jobs: usize,
    /// Base tour seed; session `k` tours with seed `base + k`.
    pub tour_seed: u64,
    /// Shard-outage schedule seed (shared; the schedule is tick-keyed).
    pub outage_seed: u64,
    /// The grid. The first point must be outage-free — it is the
    /// reference every other point's resident sets are compared against.
    pub grid: Vec<FleetGridPoint>,
}

impl FleetBenchConfig {
    /// The full measurement: 10 000 sessions × 24 ticks over an 8×4 fleet
    /// (32 shards), outage-free vs shard-kill with and without replicas.
    pub fn full(jobs: usize) -> Self {
        Self {
            sessions: 10_000,
            ticks: 24,
            nx: 8,
            ny: 4,
            objects: 48,
            levels: 3,
            frame_frac: 0.05,
            jobs,
            tour_seed: 1201,
            outage_seed: 6363,
            grid: vec![
                FleetGridPoint {
                    replicas: false,
                    period: 0,
                    outage: 0,
                },
                FleetGridPoint {
                    replicas: true,
                    period: 8,
                    outage: 3,
                },
                FleetGridPoint {
                    replicas: false,
                    period: 8,
                    outage: 3,
                },
            ],
        }
    }

    /// A seconds-scale CI smoke grid: 32 sessions × 16 ticks over a 4×2
    /// fleet, same three failure-policy points.
    pub fn smoke(jobs: usize) -> Self {
        Self {
            sessions: 32,
            ticks: 16,
            nx: 4,
            ny: 2,
            objects: 12,
            levels: 2,
            frame_frac: 0.1,
            jobs,
            tour_seed: 1201,
            outage_seed: 6363,
            grid: vec![
                FleetGridPoint {
                    replicas: false,
                    period: 0,
                    outage: 0,
                },
                FleetGridPoint {
                    replicas: true,
                    period: 6,
                    outage: 2,
                },
                FleetGridPoint {
                    replicas: false,
                    period: 6,
                    outage: 2,
                },
            ],
        }
    }

    /// Total shards (validated against the 64-shard health word by the
    /// fleet build).
    pub fn shards(&self) -> u32 {
        self.nx * self.ny
    }
}

/// What one grid point measured, summed over its sessions. Deterministic
/// except for the wall-clock fields (`latencies_ns`, `elapsed_s`), which
/// never enter the transcript.
#[derive(Debug, Clone)]
pub struct FleetPointReport {
    /// The grid point replayed.
    pub point: FleetGridPoint,
    /// Tick queries issued (one per session per tick, plus finish passes).
    pub queries: u64,
    /// Shard sub-query tasks executed.
    pub tasks: u64,
    /// Sub-rects a promoted replica served.
    pub replica_promotions: u64,
    /// Sub-rects served only via neighbour halo coverage.
    pub degraded_subqueries: u64,
    /// Sub-rects nobody could serve.
    pub unserved_subqueries: u64,
    /// Tick queries issued while at least one shard was down.
    pub outage_queries: u64,
    /// Outage-tick queries still served at full fidelity.
    pub complete_outage_queries: u64,
    /// Payload bytes delivered.
    pub bytes: f64,
    /// Index node accesses.
    pub io: u64,
    /// Per-session fingerprint of the resident set over the final frame
    /// at the final band — equal across grid points iff the invariant
    /// holds.
    pub fingerprints: Vec<u64>,
    /// Per-tick-query wall latencies, in session order (nondeterministic;
    /// report-only).
    pub latencies_ns: Vec<u64>,
    /// Wall-clock seconds this grid point took (report-only).
    pub elapsed_s: f64,
}

impl FleetPointReport {
    /// Fraction of outage-tick queries served at full fidelity (`1.0`
    /// when there were no outage ticks). The shard-kill invariant demands
    /// this stays strictly positive: healthy-region clients keep full
    /// service, dead-region clients get replicas or degraded answers —
    /// never errors.
    pub fn availability(&self) -> f64 {
        if self.outage_queries == 0 {
            1.0
        } else {
            self.complete_outage_queries as f64 / self.outage_queries as f64
        }
    }

    /// Tick queries per wall second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.queries as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) of per-query wall latency, in ns.
    pub fn latency_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

/// What one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Sessions per grid point.
    pub sessions: usize,
    /// Ticks per session.
    pub ticks: usize,
    /// Shards in the fleet.
    pub shards: u32,
    /// One report per grid point, in grid order.
    pub points: Vec<FleetPointReport>,
    /// The deterministic per-grid-point, per-session, per-tick transcript.
    pub transcript: String,
    /// Whether every grid point's final-frame resident sets matched the
    /// outage-free reference (grid point 0) and every outage query was
    /// answered.
    pub invariant_ok: bool,
    /// Total wall-clock time of the replay, in seconds.
    pub elapsed_s: f64,
}

/// What one session's worker brings home.
struct SessionOutcome {
    rows: String,
    queries: u64,
    tasks: u64,
    replica_promotions: u64,
    degraded_subqueries: u64,
    unserved_subqueries: u64,
    outage_queries: u64,
    complete_outage_queries: u64,
    bytes: f64,
    io: u64,
    latencies_ns: Vec<u64>,
    fingerprint: u64,
    covered: bool,
    session: u64,
}

/// The transcript column header.
pub const FLEET_TRANSCRIPT_HEADER: &str =
    "replicas,period,session,tick,coeffs,new_objects,bytes,io,tasks,promotions,degraded,unserved,complete\n";

/// Runs the fleet workload. The transcript, every deterministic aggregate
/// and every fingerprint are identical for any `cfg.jobs`; only the
/// wall-clock fields vary.
///
/// # Panics
/// Panics when the workload itself is miswired (empty grid, outaged grid
/// point 0, outage outliving its period, too many shards) — configuration
/// bugs, not runtime faults.
pub fn run_fleet(cfg: &FleetBenchConfig) -> FleetReport {
    assert!(
        matches!(cfg.grid.first(), Some(p) if p.period == 0),
        "grid point 0 must be the outage-free reference"
    );
    let mut scale = Scale::quick();
    scale.objects_default = cfg.objects;
    scale.levels = cfg.levels;
    let scene = figs::build_scene(&scale, cfg.objects, Placement::Uniform);
    let space = scene.config.space;
    let data = Arc::new(SceneIndexData::build(&scene));
    let engine = Engine::new(cfg.jobs);
    let speeds = [0.1, 0.3, 0.5, 0.7, 0.9];
    let shards = cfg.shards();

    let mut transcript = String::from(FLEET_TRANSCRIPT_HEADER);
    let mut points: Vec<FleetPointReport> = Vec::with_capacity(cfg.grid.len());
    let mut invariant_ok = true;
    // mar-lint: allow(D003) — wall-clock for the throughput report only; never enters the transcript
    let t0 = std::time::Instant::now();

    for gp in &cfg.grid {
        // A fresh fleet per grid point (replica policy differs and filter
        // state must never leak between points) over the shared scene data.
        let fleet =
            FleetServer::build(&data, space, &FleetConfig::ram(cfg.nx, cfg.ny, gp.replicas))
                // mar-lint: allow(D004) — the shard grid is validated static configuration
                .expect("fleet grid is valid");
        let outage = if gp.period == 0 {
            ShardOutagePlan::none(cfg.outage_seed)
        } else {
            ShardOutagePlan::new(cfg.outage_seed, gp.period, gp.outage)
                // mar-lint: allow(D004) — the outage grid is validated static configuration
                .expect("outage plan is valid")
        };
        let replicas_col = u8::from(gp.replicas);
        // mar-lint: allow(D003) — wall-clock for the per-point q/s report only
        let pt0 = std::time::Instant::now();

        let outcomes: Vec<SessionOutcome> = engine.run(
            (0..cfg.sessions).collect(),
            || (),
            |_, &k| {
                let tc = TourConfig::new(
                    space,
                    cfg.ticks,
                    cfg.tour_seed + k as u64,
                    speeds[k % speeds.len()],
                );
                let tour = if k % 2 == 0 {
                    tram_tour(&tc)
                } else {
                    pedestrian_tour(&tc)
                };
                let session = fleet.connect();
                let mut planner = FramePlanner::new();
                let mut smooth = SmoothedSpeed::default();
                let mut out = SessionOutcome {
                    rows: String::new(),
                    queries: 0,
                    tasks: 0,
                    replica_promotions: 0,
                    degraded_subqueries: 0,
                    unserved_subqueries: 0,
                    outage_queries: 0,
                    complete_outage_queries: 0,
                    bytes: 0.0,
                    io: 0,
                    latencies_ns: Vec::with_capacity(tour.samples.len() + 1),
                    fingerprint: 0,
                    covered: false,
                    session,
                };
                let mut last = None;
                for (tick, s) in tour.samples.iter().enumerate() {
                    let frame = frame_at(&space, &s.pos, cfg.frame_frac);
                    let speed = smooth.update(s.speed);
                    let band = LinearSpeedMap.band_for(speed);
                    let health =
                        FleetHealth::from_down_mask(outage.down_mask(tick as u64, shards));
                    let regions = planner.plan(&frame, band);
                    let mut coeffs = 0usize;
                    let mut new_objects = 0usize;
                    let mut bytes = 0.0f64;
                    let mut io = 0u64;
                    let mut tasks = 0u32;
                    let mut promotions = 0u32;
                    let mut degraded = 0u32;
                    let mut unserved = 0u32;
                    let mut complete = true;
                    // mar-lint: allow(D003) — per-query wall latency for the report only
                    let q0 = std::time::Instant::now();
                    for r in &regions {
                        let fr = fleet
                            .query(session, health, &r.region, r.band)
                            // mar-lint: allow(D004) — outages degrade answers, they never error; an error here is the bug this harness exists to catch
                            .expect("fleet never errors a live session");
                        coeffs += fr.result.coeffs;
                        new_objects += fr.result.new_objects;
                        bytes += fr.result.bytes;
                        io += fr.result.io;
                        tasks += fr.tasks;
                        promotions += fr.replica_promotions;
                        degraded += fr.degraded_subqueries;
                        unserved += fr.unserved_subqueries;
                        complete &= fr.complete;
                    }
                    out.latencies_ns.push(q0.elapsed().as_nanos() as u64);
                    if complete {
                        // Only a fully-served tick advances the planner:
                        // degraded coverage is refetched after recovery.
                        planner.commit(frame, band);
                    }
                    out.queries += 1;
                    out.tasks += u64::from(tasks);
                    out.replica_promotions += u64::from(promotions);
                    out.degraded_subqueries += u64::from(degraded);
                    out.unserved_subqueries += u64::from(unserved);
                    out.bytes += bytes;
                    out.io += io;
                    if health.down_count() > 0 {
                        out.outage_queries += 1;
                        out.complete_outage_queries += u64::from(complete);
                    }
                    out.rows.push_str(&format!(
                        "{replicas_col},{},{k},{tick},{coeffs},{new_objects},{bytes},{io},{tasks},{promotions},{degraded},{unserved},{}\n",
                        gp.period,
                        u8::from(complete),
                    ));
                    last = Some((frame, speed));
                }
                let (final_frame, final_speed) =
                    // mar-lint: allow(D004) — tours always have >= 1 sample
                    last.expect("tour is non-empty");
                // Recovery pass: the shard is back (all-up health); refetch
                // whatever the uncommitted planner coverage still owes over
                // the final frame at the final band.
                let band = LinearSpeedMap.band_for(final_speed);
                // mar-lint: allow(D003) — per-query wall latency for the report only
                let q0 = std::time::Instant::now();
                let mut fin_coeffs = 0usize;
                let mut fin_bytes = 0.0f64;
                for r in planner.plan(&final_frame, band) {
                    let fr = fleet
                        .query(session, FleetHealth::all_up(), &r.region, r.band)
                        // mar-lint: allow(D004) — all-up health cannot degrade or error
                        .expect("recovered fleet serves everything");
                    debug_assert!(fr.complete);
                    fin_coeffs += fr.result.coeffs;
                    fin_bytes += fr.result.bytes;
                    out.bytes += fr.result.bytes;
                    out.io += fr.result.io;
                    out.tasks += u64::from(fr.tasks);
                }
                out.latencies_ns.push(q0.elapsed().as_nanos() as u64);
                out.queries += 1;
                planner.commit(final_frame, band);
                out.rows.push_str(&format!(
                    "{replicas_col},{},{k},finish,{fin_coeffs},0,{fin_bytes},0,0,0,0,0,1\n",
                    gp.period,
                ));
                // The invariant's object: the resident set over the final
                // frame at the final band.
                let (want, _) = fleet.query_stateless(&final_frame, band);
                let sent = fleet
                    .session_sent_set(session)
                    // mar-lint: allow(D004) — the worker's session is live until teardown
                    .expect("fleet session is live");
                out.covered = want.iter().all(|id| sent.binary_search(id).is_ok());
                let mut fp_input = String::new();
                for id in want.iter().filter(|id| sent.binary_search(id).is_ok()) {
                    fp_input.push_str(&format!("{}:{};", id.object, id.coeff));
                }
                out.fingerprint = fnv1a64(&fp_input);
                out
            },
        );

        let mut report = FleetPointReport {
            point: *gp,
            queries: 0,
            tasks: 0,
            replica_promotions: 0,
            degraded_subqueries: 0,
            unserved_subqueries: 0,
            outage_queries: 0,
            complete_outage_queries: 0,
            bytes: 0.0,
            io: 0,
            fingerprints: Vec::with_capacity(cfg.sessions),
            latencies_ns: Vec::with_capacity(cfg.sessions * (cfg.ticks + 1)),
            elapsed_s: 0.0,
        };
        for o in &outcomes {
            transcript.push_str(&o.rows);
            report.queries += o.queries;
            report.tasks += o.tasks;
            report.replica_promotions += o.replica_promotions;
            report.degraded_subqueries += o.degraded_subqueries;
            report.unserved_subqueries += o.unserved_subqueries;
            report.outage_queries += o.outage_queries;
            report.complete_outage_queries += o.complete_outage_queries;
            report.bytes += o.bytes;
            report.io += o.io;
            report.fingerprints.push(o.fingerprint);
            report.latencies_ns.extend_from_slice(&o.latencies_ns);
            invariant_ok &= o.covered;
        }
        report.elapsed_s = pt0.elapsed().as_secs_f64();
        // Against the outage-free reference: identical resident sets, and
        // availability strictly positive whenever an outage actually bit.
        if let Some(reference) = points.first() {
            invariant_ok &= reference.fingerprints == report.fingerprints;
        }
        if report.outage_queries > 0 {
            invariant_ok &= report.complete_outage_queries > 0;
        }
        points.push(report);

        // Tear the grid point's sessions down; filter state must go too.
        for o in &outcomes {
            fleet
                .disconnect(o.session)
                // mar-lint: allow(D004) — each worker's session is live until this teardown
                .expect("fleet session vanished");
        }
        assert_eq!(fleet.session_count(), 0, "all fleet sessions disconnected");
        assert_eq!(
            fleet.resident_filter_entries(),
            0,
            "disconnect must release filter state"
        );
    }

    FleetReport {
        sessions: cfg.sessions,
        ticks: cfg.ticks,
        shards,
        points,
        transcript,
        invariant_ok,
        elapsed_s: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(jobs: usize) -> FleetBenchConfig {
        FleetBenchConfig {
            sessions: 4,
            ticks: 12,
            nx: 4,
            ny: 2,
            objects: 8,
            levels: 2,
            frame_frac: 0.15,
            jobs,
            tour_seed: 1201,
            outage_seed: 6363,
            grid: vec![
                FleetGridPoint {
                    replicas: false,
                    period: 0,
                    outage: 0,
                },
                FleetGridPoint {
                    replicas: true,
                    period: 5,
                    outage: 2,
                },
                FleetGridPoint {
                    replicas: false,
                    period: 5,
                    outage: 2,
                },
            ],
        }
    }

    #[test]
    fn fleet_invariant_holds_under_shard_kills() {
        let r = run_fleet(&tiny(1));
        assert!(
            r.invariant_ok,
            "resident sets diverged from outage-free run"
        );
        assert_eq!(r.points.len(), 3);
        assert_eq!(r.shards, 8);

        let clean = &r.points[0];
        assert_eq!(clean.outage_queries, 0);
        assert_eq!(clean.replica_promotions, 0);
        assert_eq!(clean.degraded_subqueries, 0);
        assert!((clean.availability() - 1.0).abs() < 1e-12);

        let replicated = &r.points[1];
        assert!(replicated.outage_queries > 0, "outages must bite");
        assert!(replicated.replica_promotions > 0, "kills must promote");
        assert_eq!(replicated.degraded_subqueries, 0);
        assert_eq!(replicated.unserved_subqueries, 0);
        assert!(
            (replicated.availability() - 1.0).abs() < 1e-12,
            "replicas keep availability at 1.0"
        );

        let degraded = &r.points[2];
        assert!(degraded.outage_queries > 0);
        assert_eq!(degraded.replica_promotions, 0);
        assert!(
            degraded.availability() > 0.0,
            "healthy-region clients keep full service"
        );
        assert!(
            degraded.availability() < 1.0 || degraded.degraded_subqueries == 0,
            "a kill that bites must show up as degraded ticks"
        );
    }

    #[test]
    fn transcript_is_jobs_invariant() {
        let serial = run_fleet(&tiny(1));
        let parallel = run_fleet(&tiny(3));
        assert_eq!(serial.transcript, parallel.transcript);
        assert_eq!(fnv1a64(&serial.transcript), fnv1a64(&parallel.transcript));
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.tasks, b.tasks);
            assert_eq!(a.replica_promotions, b.replica_promotions);
            assert_eq!(a.degraded_subqueries, b.degraded_subqueries);
            assert_eq!(a.unserved_subqueries, b.unserved_subqueries);
            assert_eq!(a.outage_queries, b.outage_queries);
            assert_eq!(a.complete_outage_queries, b.complete_outage_queries);
            assert_eq!(a.bytes.to_bits(), b.bytes.to_bits());
            assert_eq!(a.io, b.io);
            assert_eq!(a.fingerprints, b.fingerprints);
        }
    }

    #[test]
    fn transcript_shape() {
        let r = run_fleet(&tiny(1));
        // Header + per grid point: sessions × (ticks + finish row).
        assert_eq!(r.transcript.lines().count(), 1 + 3 * 4 * (12 + 1));
        assert!(r.transcript.starts_with(FLEET_TRANSCRIPT_HEADER));
    }

    #[test]
    fn latency_percentiles_are_well_formed() {
        let r = run_fleet(&tiny(1));
        for p in &r.points {
            assert_eq!(
                p.latencies_ns.len(),
                (p.queries) as usize,
                "one latency sample per tick query"
            );
            assert!(p.latency_ns(0.5) <= p.latency_ns(0.99));
            assert!(p.queries_per_sec() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "outage-free reference")]
    fn grid_must_lead_with_the_outage_free_point() {
        let mut cfg = tiny(1);
        cfg.grid[0].period = 5;
        cfg.grid[0].outage = 2;
        run_fleet(&cfg);
    }
}
