//! `mar-bench serve` — the deterministic multi-session serving harness.
//!
//! Replays `K` client tours concurrently against **one shared**
//! [`Server`] (the paper's §III setting: many mobile clients issuing
//! continuous window queries against one wavelet index). Admission is
//! batched per tick: every session issues its tick-`t` query before any
//! session starts tick `t+1`, mirroring a frame-synchronous serving loop.
//!
//! Determinism (DESIGN.md §10): each session's query stream depends only
//! on its own tour, its own speed-smoothing state and its own server-side
//! filter — never on how sessions interleave inside a tick. The per-tick
//! fan-out runs on the scoped-thread [`Engine`], whose results come back
//! in point (= session-id) order, so the transcript merge is ordered by
//! session id and `jobs = 1` vs `jobs = N` transcripts are byte-identical
//! (pinned by `crates/bench/tests/serve.rs`).
//!
//! Wall-clock timings (`elapsed_s`, per-tick latencies) are measured for
//! the throughput report only and never enter the transcript.

use crate::engine::Engine;
use crate::{figs, Scale};
use mar_core::{
    CachePolicy, FramePlanner, LinearSpeedMap, PageCacheStats, QueryRegion, SceneIndexData, Server,
    ServerCore, SmoothedSpeed, SpeedResolutionMap, WaveletIndex,
};
use mar_link::LinkConfig;
use mar_workload::{frame_at, pedestrian_tour, tram_tour, Placement, Scene, Tour, TourConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Serving-workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of concurrent client sessions.
    pub sessions: usize,
    /// Ticks each session replays.
    pub ticks: usize,
    /// Objects in the generated scene.
    pub objects: usize,
    /// Subdivision levels per object.
    pub levels: usize,
    /// Query frame fraction of the space.
    pub frame_frac: f64,
    /// Worker threads (`<= 1` = serial reference execution).
    pub jobs: usize,
    /// Base tour seed; session `k` tours with seed `base + k`.
    pub tour_seed: u64,
}

impl ServeConfig {
    /// The full measurement workload: 32 clients × 300 ticks over the
    /// quick-scale 60-object scene.
    pub fn full(jobs: usize) -> Self {
        Self {
            sessions: 32,
            ticks: 300,
            objects: 60,
            levels: 3,
            frame_frac: 0.05,
            jobs,
            tour_seed: 901,
        }
    }

    /// A seconds-scale CI smoke workload.
    pub fn smoke(jobs: usize) -> Self {
        Self {
            sessions: 4,
            ticks: 40,
            objects: 12,
            levels: 2,
            frame_frac: 0.1,
            jobs,
            tour_seed: 901,
        }
    }
}

/// Header line of the per-tick, per-session transcript CSV. Shared with
/// `mar-load`, whose loopback transcript must be byte-identical to the
/// in-process harness's.
pub const TRANSCRIPT_HEADER: &str = "tick,session,coeffs,new_objects,bytes,io,response_s\n";

/// Formats one transcript row exactly as [`run_serve`] does. `mar-load`
/// calls this with the accounting it received over the wire, so transcript
/// equality reduces to the wire layer delivering bit-identical numbers.
pub fn transcript_row(
    tick: usize,
    session: usize,
    coeffs: u64,
    new_objects: u64,
    bytes: f64,
    io: u64,
    response_s: f64,
) -> String {
    format!("{tick},{session},{coeffs},{new_objects},{bytes},{io},{response_s}\n")
}

/// The tour speed spread sessions cycle through (session `k` tours at
/// `TOUR_SPEEDS[k % TOUR_SPEEDS.len()]`).
pub const TOUR_SPEEDS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// The scene every serve replay (in-process or wire) is served from:
/// quick-scale parameters with the config's object/level overrides.
pub fn serve_scene(cfg: &ServeConfig) -> Scene {
    let mut scale = Scale::quick();
    scale.objects_default = cfg.objects;
    scale.levels = cfg.levels;
    figs::build_scene(&scale, cfg.objects, Placement::Uniform)
}

/// Session `k`'s tour under `cfg`: alternating tram/pedestrian kinds over
/// the deterministic speed spread, seeded `tour_seed + k`.
pub fn session_tour(cfg: &ServeConfig, space: mar_geom::Rect2, k: usize) -> Tour {
    let tc = TourConfig::new(
        space,
        cfg.ticks,
        cfg.tour_seed + k as u64,
        TOUR_SPEEDS[k % TOUR_SPEEDS.len()],
    );
    if k.is_multiple_of(2) {
        tram_tour(&tc)
    } else {
        pedestrian_tour(&tc)
    }
}

/// Per-session simulation state: Algorithm 1's frame planner plus the
/// session's tour and speed-smoothing filter. Boxed behind one mutex per
/// session — a session is planned by exactly one worker per tick, so the
/// lock is uncontended and exists only to hand the state safely across
/// the scoped threads.
struct SessionSim {
    session: u64,
    planner: FramePlanner,
    smooth: SmoothedSpeed,
    tour: Tour,
}

impl SessionSim {
    /// Plans this session's tick-`t` sub-queries and commits the frame.
    /// Committing before the query executes is safe in-process: the query
    /// is issued unconditionally by the same tick and cannot fail for a
    /// connected session. Returns the sub-queries plus the smoothed speed
    /// (needed for the response-time model once the result is back).
    fn plan(&mut self, scene: &Scene, tick: usize, frame_frac: f64) -> (Vec<QueryRegion>, f64) {
        let s = self.tour.samples[tick];
        let frame = frame_at(&scene.config.space, &s.pos, frame_frac);
        let speed = self.smooth.update(s.speed);
        let band = LinearSpeedMap.band_for(speed);
        let regions = self.planner.plan(&frame, band);
        self.planner.commit(frame, band);
        (regions, speed)
    }
}

/// Where the serving replay reads its index from.
///
/// `Ram` is the all-in-memory build every prior harness used. `Paged`
/// serializes the same index into a page file and serves it through the
/// motion-aware buffer pool (DESIGN.md §15) — the transcript must be
/// byte-identical either way, which `crates/bench/tests/serve.rs` pins.
#[derive(Debug, Clone)]
pub enum ServeBackend {
    /// In-memory index (the default).
    Ram,
    /// Out-of-core index: node pages + coefficient records in a page
    /// file at `path`, read through a pool of `budget_bytes` bytes.
    Paged {
        /// Where to write (and then serve) the page file.
        path: PathBuf,
        /// Hard buffer-pool byte budget.
        budget_bytes: usize,
        /// Eviction policy under that budget.
        policy: CachePolicy,
    },
}

/// What one serve run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Sessions replayed.
    pub sessions: usize,
    /// Ticks per session.
    pub ticks: usize,
    /// Queries executed (`sessions × ticks`).
    pub queries: u64,
    /// Payload bytes served across all sessions.
    pub bytes: f64,
    /// Coefficients served across all sessions.
    pub coeffs: u64,
    /// Index node accesses across all sessions (logical: what each
    /// session's query would have cost on its own).
    pub io: u64,
    /// Unique physical node visits of the per-tick group descents — the
    /// pages actually read once the tick's sessions share the index walk.
    /// Always `<= io`; the gap is the cross-session sharing win.
    pub unique_io: u64,
    /// The deterministic per-tick, per-session transcript (CSV).
    pub transcript: String,
    /// Wall-clock duration of each tick's batch, in nanoseconds.
    pub tick_ns: Vec<u64>,
    /// Total wall-clock time of the replay loop, in seconds.
    pub elapsed_s: f64,
    /// Page-file size in bytes (`None` on the in-RAM backend).
    pub store_file_bytes: Option<u64>,
    /// Buffer-pool statistics (`None` on the in-RAM backend).
    pub cache: Option<PageCacheStats>,
}

impl ServeReport {
    /// Queries per second of wall-clock replay time.
    pub fn queries_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.queries as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// The `q`-quantile (0..=1) of per-tick batch latency, in nanoseconds.
    pub fn tick_latency_ns(&self, q: f64) -> u64 {
        if self.tick_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.tick_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

/// Runs the serving workload on the in-RAM backend. The transcript (and
/// every aggregate derived from it) is identical for any `cfg.jobs`; only
/// the wall-clock fields change.
pub fn run_serve(cfg: &ServeConfig) -> ServeReport {
    run_serve_backend(cfg, &ServeBackend::Ram)
}

/// Runs the serving workload against the chosen index backend. The
/// transcript does not depend on the backend (or on `cfg.jobs`): the
/// out-of-core path answers byte-identically and only the wall-clock and
/// cache-statistics fields differ.
pub fn run_serve_backend(cfg: &ServeConfig, backend: &ServeBackend) -> ServeReport {
    let scene = serve_scene(cfg);
    let server = match backend {
        ServeBackend::Ram => {
            let data = SceneIndexData::build(&scene);
            // The index bulk-load itself fans out across the same worker budget.
            let index = WaveletIndex::build_jobs(&data, cfg.jobs);
            Server::from_core(ServerCore::from_parts(Arc::new(data), Arc::new(index)))
        }
        ServeBackend::Paged {
            path,
            budget_bytes,
            policy,
        } => {
            let core = ServerCore::new_paged(&scene, path, *budget_bytes, *policy)
                // mar-lint: allow(D004) — the harness cannot proceed without its store file; surface the I/O error
                .expect("serve: cannot build the page-file backend");
            Server::from_core(core)
        }
    };
    let link = LinkConfig::paper();

    // Sessions connect serially in id order, each with its own tour:
    // alternating tram/pedestrian kinds over a deterministic speed spread.
    let sims: Vec<Mutex<SessionSim>> = (0..cfg.sessions)
        .map(|k| {
            Mutex::new(SessionSim {
                session: server.connect(),
                planner: FramePlanner::new(),
                smooth: SmoothedSpeed::default(),
                tour: session_tour(cfg, scene.config.space, k),
            })
        })
        .collect();

    let engine = Engine::new(cfg.jobs);
    let mut transcript = String::from(TRANSCRIPT_HEADER);
    let mut tick_ns = Vec::with_capacity(cfg.ticks);
    let mut bytes = 0.0;
    let mut coeffs = 0u64;
    let mut io = 0u64;
    let mut unique_io = 0u64;
    // mar-lint: allow(D003) — wall-clock throughput measurement is this harness's job; timings never enter the transcript
    let t0 = std::time::Instant::now();
    for tick in 0..cfg.ticks {
        // mar-lint: allow(D003) — per-tick batch latency for the report only
        let t_tick = std::time::Instant::now();
        // Phase 1 — plan: every session runs Algorithm 1 for its own tour
        // sample in parallel. `Engine::run` returns in point (= session
        // id) order, so the plans line up with the session ids.
        let plans = engine.run(
            (0..cfg.sessions).collect(),
            || (),
            |_, &k| {
                let mut sim = sims[k]
                    .lock()
                    // mar-lint: allow(D004) — poisoning implies a sibling worker panicked; propagate
                    .expect("session sim poisoned");
                (sim.session, sim.plan(&scene, tick, cfg.frame_frac))
            },
        );
        // Phase 2 — one cross-session group descent for the whole tick:
        // every session's sub-queries share a single index walk, and the
        // per-session results are demultiplexed in session-id order so the
        // transcript merge below is unchanged from the scalar harness.
        let batch: Vec<(u64, &[QueryRegion])> = plans
            .iter()
            .map(|(session, (regions, _))| (*session, regions.as_slice()))
            .collect();
        let (results, unique) = server.query_batch(&batch);
        unique_io += unique;
        tick_ns.push(t_tick.elapsed().as_nanos() as u64);
        // Merge in session-id order.
        for (k, (result, (_, (_, speed)))) in results.iter().zip(&plans).enumerate() {
            let r = result
                .as_ref()
                // mar-lint: allow(D004) — sessions 0..N were minted by the bulk connect above and live until teardown
                .expect("serve session vanished mid-run");
            let response_s = if r.bytes > 0.0 {
                link.request_time(r.bytes, *speed)
            } else {
                0.0
            };
            transcript.push_str(&transcript_row(
                tick,
                k,
                r.coeffs as u64,
                r.new_objects as u64,
                r.bytes,
                r.io,
                response_s,
            ));
            bytes += r.bytes;
            coeffs += r.coeffs as u64;
            io += r.io;
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    // Tear every session down; the filter state must go with it.
    for k in 0..cfg.sessions as u64 {
        server
            .disconnect(k)
            // mar-lint: allow(D004) — sessions 0..N were minted by the bulk connect above
            .expect("serve session vanished");
    }
    assert_eq!(server.session_count(), 0, "all sessions disconnected");
    assert_eq!(
        server.resident_filter_entries(),
        0,
        "disconnect must release filter state"
    );
    let store_file_bytes = server.index().paged().map(mar_core::PagedIndex::file_bytes);
    let cache = server.index().cache_stats();

    ServeReport {
        sessions: cfg.sessions,
        ticks: cfg.ticks,
        queries: (cfg.sessions * cfg.ticks) as u64,
        bytes,
        coeffs,
        io,
        unique_io,
        transcript,
        tick_ns,
        elapsed_s,
        store_file_bytes,
        cache,
    }
}

/// FNV-1a 64-bit hash of a transcript — a compact fingerprint for
/// comparing `--jobs 1` vs `--jobs N` runs across processes.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(jobs: usize) -> ServeConfig {
        ServeConfig {
            sessions: 3,
            ticks: 10,
            objects: 8,
            levels: 2,
            frame_frac: 0.15,
            jobs,
            tour_seed: 901,
        }
    }

    #[test]
    fn serve_produces_complete_transcript() {
        let r = run_serve(&tiny(1));
        assert_eq!(r.queries, 30);
        assert_eq!(r.tick_ns.len(), 10);
        assert!(r.bytes > 0.0, "clients must retrieve data");
        assert!(
            r.unique_io > 0 && r.unique_io <= r.io,
            "shared descent reads at most the logical page count ({} vs {})",
            r.unique_io,
            r.io
        );
        // Header + one line per (tick, session).
        assert_eq!(r.transcript.lines().count(), 1 + 30);
        assert!(r
            .transcript
            .starts_with("tick,session,coeffs,new_objects,bytes,io,response_s\n"));
    }

    #[test]
    fn transcript_is_jobs_invariant() {
        let serial = run_serve(&tiny(1));
        let parallel = run_serve(&tiny(3));
        assert_eq!(serial.transcript, parallel.transcript);
        assert_eq!(serial.bytes, parallel.bytes);
        assert_eq!(serial.coeffs, parallel.coeffs);
        assert_eq!(serial.io, parallel.io);
        assert_eq!(serial.unique_io, parallel.unique_io);
        assert_eq!(fnv1a64(&serial.transcript), fnv1a64(&parallel.transcript));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64("a"), fnv1a64("b"));
    }
}
