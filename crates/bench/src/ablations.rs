//! Ablations of the design choices DESIGN.md calls out — not figures from
//! the paper, but the experiments a reviewer would ask for:
//!
//! * `abl_index` — what the support-region index's R\* machinery buys over
//!   Guttman splits, and bulk loading over incremental insertion.
//! * `abl_alloc` — Eq. 2 recursive allocation vs an even split vs the
//!   exhaustive `k!` ordering search (the paper's "can be omitted" claim).
//! * `abl_sectors` — the number of direction sectors `k`.
//! * `abl_multires` — speed-scaled buffer resolutions on/off (§V final ¶).
//! * `abl_smoothing` — raw vs smoothed speed→resolution mapping on
//!   station-heavy tram tours.

use crate::{Scale, Table};
use mar_buffer::{AllocationStrategy, MotionAwarePrefetcher};
use mar_core::bufsim::{run_buffer_sim, BufferSimConfig};
use mar_core::{
    IncrementalClient, LinearSpeedMap, SceneIndexData, Server, SmoothedSpeed, WaveletIndex,
};
use mar_mesh::ResolutionBand;
use mar_rtree::{RTree, RTreeConfig, Variant};
use mar_workload::{frame_at, paper_space, tram_tour, Placement, TourConfig};

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Index ablation: average I/O per tram-tour query for four ways of
/// building the same support-region index.
pub fn abl_index(scale: &Scale) -> Table {
    let scene = crate::figs::build_scene(scale, scale.objects_default, Placement::Uniform);
    let data = SceneIndexData::build(&scene);
    let build = |variant: Variant, bulk: bool| -> WaveletIndex {
        let cfg = RTreeConfig::new(20, variant);
        if bulk {
            WaveletIndex::build_with(&data, cfg)
        } else {
            // Incremental insertion through the public R-tree API.
            let mut tree: RTree<3, mar_core::CoeffRef> = RTree::new(cfg);
            for r in &data.records {
                tree.insert(r.support_xy.lift(r.w, r.w), r.id);
            }
            WaveletIndex::from_tree(tree)
        }
    };
    let variants: Vec<(&str, WaveletIndex)> = vec![
        ("rstar_bulk", build(Variant::RStar, true)),
        ("rstar_insert", build(Variant::RStar, false)),
        ("guttman_bulk", build(Variant::Guttman, true)),
        ("guttman_insert", build(Variant::Guttman, false)),
    ];
    let mut t = Table::new(
        "abl_index",
        "index I/O per query: build strategy ablation",
        "speed",
        variants.iter().map(|(n, _)| n.to_string()).collect(),
    );
    for &speed in &scale.speeds {
        let tour = tram_tour(&TourConfig::new(
            paper_space(),
            scale.ticks,
            scale.tour_seeds[0],
            speed,
        ));
        let mut row = Vec::new();
        for (_, idx) in &variants {
            let mut io = 0u64;
            for s in &tour.samples {
                let frame = frame_at(&paper_space(), &s.pos, 0.1);
                io += idx.query(&frame, ResolutionBand::new(s.speed, 1.0)).1;
            }
            row.push(io as f64 / tour.len() as f64);
        }
        t.push(speed, row);
    }
    t
}

/// Allocation ablation: hit rate under the three strategies.
pub fn abl_alloc(scale: &Scale) -> Table {
    let scene = crate::figs::build_scene(scale, scale.objects_default, Placement::Uniform);
    let strategies = [
        ("recursive_eq2", AllocationStrategy::Recursive),
        ("even_split", AllocationStrategy::Even),
        ("best_ordering", AllocationStrategy::BestOrdering),
    ];
    let mut t = Table::new(
        "abl_alloc",
        "cache hit rate: buffer allocation strategy ablation",
        "buffer_kb",
        strategies.iter().map(|(n, _)| n.to_string()).collect(),
    );
    for kb in [16.0, 64.0] {
        let cfg = BufferSimConfig {
            buffer_bytes: kb * 1024.0,
            ..Default::default()
        };
        let mut row = Vec::new();
        for (_, strat) in &strategies {
            let mut hits = Vec::new();
            for &seed in &scale.tour_seeds {
                let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, 0.5));
                let mut server = Server::new(&scene);
                let mut p = MotionAwarePrefetcher::with_strategy(4, *strat);
                hits.push(run_buffer_sim(&mut server, &scene, &tour, &mut p, &cfg).hit_rate());
            }
            row.push(mean(&hits));
        }
        t.push(kb, row);
    }
    t
}

/// Sector-count ablation: hit rate for k ∈ {2, 4, 8, 16}.
pub fn abl_sectors(scale: &Scale) -> Table {
    let scene = crate::figs::build_scene(scale, scale.objects_default, Placement::Uniform);
    let ks = [2usize, 4, 8, 16];
    let mut t = Table::new(
        "abl_sectors",
        "cache hit rate vs number of direction sectors",
        "k",
        vec!["hit_rate".into(), "utilization".into()],
    );
    let cfg = BufferSimConfig {
        buffer_bytes: 32.0 * 1024.0,
        ..Default::default()
    };
    for &k in &ks {
        let mut hits = Vec::new();
        let mut utils = Vec::new();
        for &seed in &scale.tour_seeds {
            let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, 0.5));
            let mut server = Server::new(&scene);
            let mut p = MotionAwarePrefetcher::new(k);
            let m = run_buffer_sim(&mut server, &scene, &tour, &mut p, &cfg);
            hits.push(m.hit_rate());
            utils.push(m.utilization());
        }
        t.push(k as f64, vec![mean(&hits), mean(&utils)]);
    }
    t
}

/// Multiresolution-buffering ablation (§V final ¶) across speeds.
pub fn abl_multires(scale: &Scale) -> Table {
    let scene = crate::figs::build_scene(scale, scale.objects_default, Placement::Uniform);
    let mut t = Table::new(
        "abl_multires",
        "cache hit rate: speed-scaled resolutions on/off (32 KB)",
        "speed",
        vec!["multires".into(), "full_res_only".into()],
    );
    for &speed in &scale.speeds {
        let mut row = Vec::new();
        for multires in [true, false] {
            let cfg = BufferSimConfig {
                buffer_bytes: 32.0 * 1024.0,
                multires,
                ..Default::default()
            };
            let mut hits = Vec::new();
            for &seed in &scale.tour_seeds {
                let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, speed));
                let mut server = Server::new(&scene);
                let mut p = MotionAwarePrefetcher::new(4);
                hits.push(run_buffer_sim(&mut server, &scene, &tour, &mut p, &cfg).hit_rate());
            }
            row.push(mean(&hits));
        }
        t.push(speed, row);
    }
    t
}

/// Speed-smoothing ablation: total KB retrieved per 1000 units on a
/// station-heavy tram tour, with raw vs smoothed MapSpeedToResolution
/// input.
pub fn abl_smoothing(scale: &Scale) -> Table {
    let scene = crate::figs::build_scene(scale, scale.objects_default, Placement::Uniform);
    let mut t = Table::new(
        "abl_smoothing",
        "retrieval (KB/1000 units): raw vs smoothed speed mapping (tram)",
        "speed",
        vec!["smoothed_kb".into(), "raw_kb".into()],
    );
    for &speed in &scale.speeds {
        let mut row = Vec::new();
        for smoothed in [true, false] {
            let mut vals = Vec::new();
            for &seed in &scale.tour_seeds {
                let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, speed));
                let mut server = Server::new(&scene);
                let mut client = IncrementalClient::connect(&mut server, LinearSpeedMap);
                let mut smoother = SmoothedSpeed::default();
                let mut first = 0.0;
                for (i, s) in tour.samples.iter().enumerate() {
                    let sp = if smoothed {
                        smoother.update(s.speed)
                    } else {
                        s.speed
                    };
                    let frame = frame_at(&paper_space(), &s.pos, 0.1);
                    let r = client.tick(&mut server, frame, sp);
                    if i == 0 {
                        first = r.bytes;
                    }
                }
                let dist = tour.distance().max(1.0);
                vals.push((client.metrics().bytes - first) / 1024.0 * 1000.0 / dist);
            }
            row.push(mean(&vals));
        }
        t.push(speed, row);
    }
    t
}

/// Every ablation table.
pub fn all_ablations(scale: &Scale) -> Vec<Table> {
    vec![
        abl_index(scale),
        abl_alloc(scale),
        abl_sectors(scale),
        abl_multires(scale),
        abl_smoothing(scale),
        abl_direction(scale),
    ]
}

/// Direction-estimator ablation: Kalman/RLS block probabilities vs the
/// \[15\]-style empirical Markov direction model.
pub fn abl_direction(scale: &Scale) -> Table {
    let scene = crate::figs::build_scene(scale, scale.objects_default, Placement::Uniform);
    let mut t = Table::new(
        "abl_direction",
        "cache hit rate: Kalman/RLS vs Markov direction estimation (32 KB)",
        "speed",
        vec!["kalman_rls".into(), "markov".into()],
    );
    for &speed in &scale.speeds {
        let mut row = Vec::new();
        for markov in [false, true] {
            let cfg = BufferSimConfig {
                buffer_bytes: 32.0 * 1024.0,
                markov_directions: markov,
                ..Default::default()
            };
            let mut hits = Vec::new();
            for &seed in &scale.tour_seeds {
                let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, speed));
                let mut server = Server::new(&scene);
                let mut p = MotionAwarePrefetcher::new(4);
                hits.push(run_buffer_sim(&mut server, &scene, &tour, &mut p, &cfg).hit_rate());
            }
            row.push(mean(&hits));
        }
        t.push(speed, row);
    }
    t
}
