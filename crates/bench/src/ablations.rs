//! Ablations of the design choices DESIGN.md calls out — not figures from
//! the paper, but the experiments a reviewer would ask for:
//!
//! * `abl_index` — what the support-region index's R\* machinery buys over
//!   Guttman splits, and bulk loading over incremental insertion.
//! * `abl_alloc` — Eq. 2 recursive allocation vs an even split vs the
//!   exhaustive `k!` ordering search (the paper's "can be omitted" claim).
//! * `abl_sectors` — the number of direction sectors `k`.
//! * `abl_multires` — speed-scaled buffer resolutions on/off (§V final ¶).
//! * `abl_smoothing` — raw vs smoothed speed→resolution mapping on
//!   station-heavy tram tours.
//! * `abl_store` — out-of-core buffer-pool policy: the Eq. 2 motion-aware
//!   eviction vs plain LRU across pool budgets (DESIGN.md §15).
//!
//! Like the figures, every ablation fans its sweep points through
//! [`Engine::run`](crate::engine::Engine::run) and reassembles them in a
//! fixed order, so serial and parallel runs agree byte-for-byte.

use crate::engine::Engine;
use crate::figs::mean;
use crate::serve::{session_tour, ServeConfig};
use crate::{Scale, Table};
use mar_buffer::{AllocationStrategy, MotionAwarePrefetcher};
use mar_core::bufsim::{run_buffer_sim, BufferSimConfig};
use mar_core::{
    CachePolicy, IncrementalClient, LinearSpeedMap, QueryRegion, SceneIndexData, Server,
    ServerCore, SmoothedSpeed, SpeedResolutionMap, WaveletIndex,
};
use mar_mesh::ResolutionBand;
use mar_rtree::{RTree, RTreeConfig, Variant};
use mar_workload::{frame_at, paper_space, tram_tour, Placement, TourConfig};
use std::sync::Arc;

/// Index ablation: average I/O per tram-tour query for four ways of
/// building the same support-region index.
pub fn abl_index(scale: &Scale) -> Table {
    abl_index_with(&Engine::serial(), scale)
}

/// [`abl_index`] on an engine: the four index variants are built once and
/// shared read-only; one sweep point per speed.
pub fn abl_index_with(engine: &Engine, scale: &Scale) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let data = SceneIndexData::build(&scene);
    let build = |variant: Variant, bulk: bool| -> WaveletIndex {
        let cfg = RTreeConfig::new(20, variant);
        if bulk {
            WaveletIndex::build_with(&data, cfg)
        } else {
            // Incremental insertion through the public R-tree API.
            let mut tree: RTree<3, mar_core::CoeffRef> = RTree::new(cfg);
            for r in &data.records {
                tree.insert(r.support_xy.lift(r.w, r.w), r.id);
            }
            WaveletIndex::from_tree(tree)
        }
    };
    let variants: Vec<(&str, WaveletIndex)> = vec![
        ("rstar_bulk", build(Variant::RStar, true)),
        ("rstar_insert", build(Variant::RStar, false)),
        ("guttman_bulk", build(Variant::Guttman, true)),
        ("guttman_insert", build(Variant::Guttman, false)),
    ];
    let rows = engine.run(
        scale.speeds.clone(),
        || (),
        |_, &speed| {
            let tour = tram_tour(&TourConfig::new(
                paper_space(),
                scale.ticks,
                scale.tour_seeds[0],
                speed,
            ));
            variants
                .iter()
                .map(|(_, idx)| {
                    let mut io = 0u64;
                    for s in &tour.samples {
                        let frame = frame_at(&paper_space(), &s.pos, 0.1);
                        io += idx.query(&frame, ResolutionBand::new(s.speed, 1.0)).1;
                    }
                    io as f64 / tour.len() as f64
                })
                .collect::<Vec<f64>>()
        },
    );
    let mut t = Table::new(
        "abl_index",
        "index I/O per query: build strategy ablation",
        "speed",
        variants.iter().map(|(n, _)| n.to_string()).collect(),
    );
    for (&speed, row) in scale.speeds.iter().zip(rows) {
        t.push(speed, row);
    }
    t
}

/// Allocation ablation: hit rate under the three strategies.
pub fn abl_alloc(scale: &Scale) -> Table {
    abl_alloc_with(&Engine::serial(), scale)
}

/// [`abl_alloc`] on an engine: one point per (buffer size, strategy, seed).
pub fn abl_alloc_with(engine: &Engine, scale: &Scale) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let strategies = [
        ("recursive_eq2", AllocationStrategy::Recursive),
        ("even_split", AllocationStrategy::Even),
        ("best_ordering", AllocationStrategy::BestOrdering),
    ];
    let kbs = [16.0, 64.0];
    let points: Vec<(f64, usize, u64)> = kbs
        .iter()
        .flat_map(|&kb| {
            (0..strategies.len())
                .flat_map(move |si| scale.tour_seeds.iter().map(move |&sd| (kb, si, sd)))
        })
        .collect();
    let results = engine.run(
        points,
        || Server::new(&scene),
        |server, &(kb, si, seed)| {
            let cfg = BufferSimConfig {
                buffer_bytes: kb * 1024.0,
                ..Default::default()
            };
            let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, 0.5));
            let mut p = MotionAwarePrefetcher::with_strategy(4, strategies[si].1);
            run_buffer_sim(server, &scene, &tour, &mut p, &cfg).hit_rate()
        },
    );
    let mut t = Table::new(
        "abl_alloc",
        "cache hit rate: buffer allocation strategy ablation",
        "buffer_kb",
        strategies.iter().map(|(n, _)| n.to_string()).collect(),
    );
    let seeds = scale.tour_seeds.len();
    let per_kb = strategies.len() * seeds;
    for (i, &kb) in kbs.iter().enumerate() {
        let chunk = &results[i * per_kb..(i + 1) * per_kb];
        t.push(kb, chunk.chunks(seeds).map(mean).collect());
    }
    t
}

/// Sector-count ablation: hit rate for k ∈ {2, 4, 8, 16}.
pub fn abl_sectors(scale: &Scale) -> Table {
    abl_sectors_with(&Engine::serial(), scale)
}

/// [`abl_sectors`] on an engine: one point per (k, seed).
pub fn abl_sectors_with(engine: &Engine, scale: &Scale) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let ks = [2usize, 4, 8, 16];
    let cfg = BufferSimConfig {
        buffer_bytes: 32.0 * 1024.0,
        ..Default::default()
    };
    let points: Vec<(usize, u64)> = ks
        .iter()
        .flat_map(|&k| scale.tour_seeds.iter().map(move |&sd| (k, sd)))
        .collect();
    let results = engine.run(
        points,
        || Server::new(&scene),
        |server, &(k, seed)| {
            let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, 0.5));
            let mut p = MotionAwarePrefetcher::new(k);
            let m = run_buffer_sim(server, &scene, &tour, &mut p, &cfg);
            (m.hit_rate(), m.utilization())
        },
    );
    let mut t = Table::new(
        "abl_sectors",
        "cache hit rate vs number of direction sectors",
        "k",
        vec!["hit_rate".into(), "utilization".into()],
    );
    let seeds = scale.tour_seeds.len();
    for (i, &k) in ks.iter().enumerate() {
        let chunk = &results[i * seeds..(i + 1) * seeds];
        let hits: Vec<f64> = chunk.iter().map(|r| r.0).collect();
        let utils: Vec<f64> = chunk.iter().map(|r| r.1).collect();
        t.push(k as f64, vec![mean(&hits), mean(&utils)]);
    }
    t
}

/// Shared engine runner for the two-column on/off buffer ablations: for
/// each speed, columns `[variant_a, variant_b]` where the variant flag
/// feeds `cfg_of`; one point per (speed, variant, seed).
fn on_off_buffer_ablation(
    engine: &Engine,
    scale: &Scale,
    id: &'static str,
    title: &'static str,
    columns: [&str; 2],
    cfg_of: impl Fn(bool) -> BufferSimConfig + Sync,
) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let points: Vec<(f64, bool, u64)> = scale
        .speeds
        .iter()
        .flat_map(|&sp| {
            [true, false]
                .into_iter()
                .flat_map(move |flag| scale.tour_seeds.iter().map(move |&sd| (sp, flag, sd)))
        })
        .collect();
    let results = engine.run(
        points,
        || Server::new(&scene),
        |server, &(speed, flag, seed)| {
            let cfg = cfg_of(flag);
            let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, speed));
            let mut p = MotionAwarePrefetcher::new(4);
            run_buffer_sim(server, &scene, &tour, &mut p, &cfg).hit_rate()
        },
    );
    let mut t = Table::new(
        id,
        title,
        "speed",
        columns.iter().map(|c| c.to_string()).collect(),
    );
    let seeds = scale.tour_seeds.len();
    let per_speed = 2 * seeds;
    for (i, &speed) in scale.speeds.iter().enumerate() {
        let chunk = &results[i * per_speed..(i + 1) * per_speed];
        t.push(speed, chunk.chunks(seeds).map(mean).collect());
    }
    t
}

/// Multiresolution-buffering ablation (§V final ¶) across speeds.
pub fn abl_multires(scale: &Scale) -> Table {
    abl_multires_with(&Engine::serial(), scale)
}

/// [`abl_multires`] on an engine.
pub fn abl_multires_with(engine: &Engine, scale: &Scale) -> Table {
    on_off_buffer_ablation(
        engine,
        scale,
        "abl_multires",
        "cache hit rate: speed-scaled resolutions on/off (32 KB)",
        ["multires", "full_res_only"],
        |multires| BufferSimConfig {
            buffer_bytes: 32.0 * 1024.0,
            multires,
            ..Default::default()
        },
    )
}

/// Speed-smoothing ablation: total KB retrieved per 1000 units on a
/// station-heavy tram tour, with raw vs smoothed MapSpeedToResolution
/// input.
pub fn abl_smoothing(scale: &Scale) -> Table {
    abl_smoothing_with(&Engine::serial(), scale)
}

/// [`abl_smoothing`] on an engine: one point per (speed, smoothed, seed).
pub fn abl_smoothing_with(engine: &Engine, scale: &Scale) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let points: Vec<(f64, bool, u64)> = scale
        .speeds
        .iter()
        .flat_map(|&sp| {
            [true, false]
                .into_iter()
                .flat_map(move |sm| scale.tour_seeds.iter().map(move |&sd| (sp, sm, sd)))
        })
        .collect();
    let results = engine.run(
        points,
        || Server::new(&scene),
        |server, &(speed, smoothed, seed)| {
            let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, speed));
            let mut client = IncrementalClient::connect(server, LinearSpeedMap);
            let mut smoother = SmoothedSpeed::default();
            let mut first = 0.0;
            for (i, s) in tour.samples.iter().enumerate() {
                let sp = if smoothed {
                    smoother.update(s.speed)
                } else {
                    s.speed
                };
                let frame = frame_at(&paper_space(), &s.pos, 0.1);
                let r = client.tick(server, frame, sp);
                if i == 0 {
                    first = r.bytes;
                }
            }
            let dist = tour.distance().max(1.0);
            (client.metrics().bytes - first) / 1024.0 * 1000.0 / dist
        },
    );
    let mut t = Table::new(
        "abl_smoothing",
        "retrieval (KB/1000 units): raw vs smoothed speed mapping (tram)",
        "speed",
        vec!["smoothed_kb".into(), "raw_kb".into()],
    );
    let seeds = scale.tour_seeds.len();
    let per_speed = 2 * seeds;
    for (i, &speed) in scale.speeds.iter().enumerate() {
        let chunk = &results[i * per_speed..(i + 1) * per_speed];
        t.push(speed, chunk.chunks(seeds).map(mean).collect());
    }
    t
}

/// Out-of-core buffer-pool ablation: tour-workload hit rate of the
/// Eq. 2 motion-aware eviction policy vs plain LRU across pool budgets.
pub fn abl_store(scale: &Scale) -> Table {
    abl_store_with(&Engine::serial(), scale)
}

/// [`abl_store`] on an engine: the index is serialized to a scratch page
/// file once, and every (budget, policy, seed) point reopens it with its
/// own pool and replays the serve-style tour workload against it. One
/// point per (budget, policy, seed); the transcript-level answers are
/// backend-invariant, so only the pool's hit rate distinguishes the
/// columns.
pub fn abl_store_with(engine: &Engine, scale: &Scale) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let data = Arc::new(SceneIndexData::build(&scene));
    let dir = std::env::temp_dir().join("mar-bench-abl-store");
    // mar-lint: allow(D004) — a scratch dir the ablation cannot run without
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{}.pages", std::process::id()));
    // mar-lint: allow(D004) — the ablation cannot run without its page file
    mar_core::write_store(&path, &data).expect("write page file");
    let policies = [
        ("motion_aware", CachePolicy::MotionAware),
        ("lru", CachePolicy::Lru),
    ];
    let budgets_kb = [16usize, 32, 64, 128];
    let points: Vec<(usize, usize, u64)> = budgets_kb
        .iter()
        .flat_map(|&kb| {
            (0..policies.len())
                .flat_map(move |pi| scale.tour_seeds.iter().map(move |&sd| (kb, pi, sd)))
        })
        .collect();
    let results = engine.run(
        points,
        || (),
        |_, &(kb, pi, seed)| {
            let index = WaveletIndex::open_paged(&path, kb * 1024, policies[pi].1)
                // mar-lint: allow(D004) — the file was written above; failing to reopen it is fatal
                .expect("reopen page file");
            let server =
                Server::from_core(ServerCore::from_parts(Arc::clone(&data), Arc::new(index)));
            let cfg = ServeConfig {
                sessions: 4,
                ticks: scale.ticks,
                objects: scale.objects_default,
                levels: scale.levels,
                frame_frac: 0.1,
                jobs: 1,
                tour_seed: seed,
            };
            let tours: Vec<_> = (0..cfg.sessions)
                .map(|k| session_tour(&cfg, scene.config.space, k))
                .collect();
            let sessions: Vec<u64> = (0..cfg.sessions).map(|_| server.connect()).collect();
            for tick in 0..cfg.ticks {
                for (k, &c) in sessions.iter().enumerate() {
                    let s = &tours[k].samples[tick];
                    let frame = frame_at(&scene.config.space, &s.pos, cfg.frame_frac);
                    let q = [QueryRegion {
                        region: frame,
                        band: LinearSpeedMap.band_for(s.speed),
                    }];
                    server
                        .query(c, &q)
                        // mar-lint: allow(D004) — sessions were minted by the connect loop above
                        .expect("abl_store session vanished");
                }
            }
            let stats = server
                .index()
                .cache_stats()
                // mar-lint: allow(D004) — the index was opened paged above
                .expect("paged index has a pool");
            stats.hit_ratio()
        },
    );
    let _ = std::fs::remove_file(&path);
    let mut t = Table::new(
        "abl_store",
        "buffer-pool hit rate: motion-aware vs LRU eviction (paged store)",
        "pool_kb",
        policies.iter().map(|(n, _)| n.to_string()).collect(),
    );
    let seeds = scale.tour_seeds.len();
    let per_kb = policies.len() * seeds;
    for (i, &kb) in budgets_kb.iter().enumerate() {
        let chunk = &results[i * per_kb..(i + 1) * per_kb];
        t.push(kb as f64, chunk.chunks(seeds).map(mean).collect());
    }
    t
}

/// Direction-estimator ablation: Kalman/RLS block probabilities vs the
/// \[15\]-style empirical Markov direction model.
pub fn abl_direction(scale: &Scale) -> Table {
    abl_direction_with(&Engine::serial(), scale)
}

/// [`abl_direction`] on an engine.
pub fn abl_direction_with(engine: &Engine, scale: &Scale) -> Table {
    // Column order is (kalman, markov) = (flag false, flag true), so the
    // on/off runner's `[true, false]` order is inverted via the flag.
    on_off_buffer_ablation(
        engine,
        scale,
        "abl_direction",
        "cache hit rate: Kalman/RLS vs Markov direction estimation (32 KB)",
        ["kalman_rls", "markov"],
        |kalman_first| BufferSimConfig {
            buffer_bytes: 32.0 * 1024.0,
            markov_directions: !kalman_first,
            ..Default::default()
        },
    )
}

/// Every ablation table on a serial engine.
pub fn all_ablations(scale: &Scale) -> Vec<Table> {
    all_ablations_with(&Engine::serial(), scale)
}

/// Every ablation table on the given engine.
pub fn all_ablations_with(engine: &Engine, scale: &Scale) -> Vec<Table> {
    vec![
        abl_index_with(engine, scale),
        abl_alloc_with(engine, scale),
        abl_sectors_with(engine, scale),
        abl_multires_with(engine, scale),
        abl_smoothing_with(engine, scale),
        abl_direction_with(engine, scale),
        abl_store_with(engine, scale),
    ]
}
