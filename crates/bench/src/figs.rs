//! One row-generator per figure of §VII. See DESIGN.md §3 for the mapping
//! and EXPERIMENTS.md for paper-vs-measured results.
//!
//! Every figure is expressed as a sweep over independent points (speed ×
//! tour seed × size/fraction/combination) dispatched through
//! [`Engine::run`](crate::engine::Engine::run): the points are enumerated
//! in a fixed order, computed on however many workers the engine has, and
//! reassembled in that order — so the tables are byte-identical whether
//! the engine is serial or parallel (`crates/bench/tests/parallel.rs`).
//! The `figN(scale)` entry points are serial wrappers around the
//! `figN_with(engine, scale)` variants used by `reproduce --jobs N`.

use crate::engine::Engine;
use crate::{Scale, Table};
use mar_buffer::{MotionAwarePrefetcher, NaivePrefetcher};
use mar_core::bufsim::{run_buffer_sim, BufferSimConfig};
use mar_core::system::{run_motion_aware_system, run_naive_system, SystemConfig};
use mar_core::{
    IncrementalClient, LinearSpeedMap, NaivePointIndex, SceneIndexData, Server, WaveletIndex,
};
use mar_mesh::ResolutionBand;
use mar_workload::{
    frame_at, paper_space, pedestrian_tour, tram_tour, Placement, Scene, SceneConfig, Tour,
    TourConfig,
};
use std::sync::Arc;

/// Builds the scene for `objects` objects under the scale's parameters.
/// Prefer [`Engine::scene`] where an engine is available — it memoises.
pub fn build_scene(scale: &Scale, objects: usize, placement: Placement) -> Scene {
    let mut cfg = SceneConfig::paper(objects, scale.scene_seed);
    cfg.levels = scale.levels;
    cfg.target_bytes = objects as f64 * scale.bytes_per_object;
    cfg.placement = placement;
    Scene::generate(cfg)
}

pub(crate) fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Fig. 8/9 measure clients "traveling similar distances at varying
/// speeds": a slow client needs more ticks to cover the same ground. This
/// returns the tick count for a nominal tour distance, capped to keep the
/// slowest sweeps tractable.
fn ticks_for_distance(scale: &Scale, speed: f64) -> usize {
    let max_step = TourConfig::new(paper_space(), 1, 0, speed).max_step;
    // Scale the nominal distance with the experiment scale so quick runs
    // stay quick; slow clients always get enough ticks to actually cover
    // it (each tick is a cheap sliver query, so even 10^5 ticks are fine).
    let target_distance = 600.0 + scale.ticks as f64;
    let ticks = (target_distance / (speed.max(1e-3) * max_step)).ceil() as usize;
    ticks.clamp(50, 100_000)
}

/// KB retrieved per 1000 units of distance traveled by the incremental
/// client (the initial frame fill is excluded — the paper's tours are long
/// enough to amortise it away, ours are capped).
fn retrieval_kb_per_kdist(scene: &Scene, server: &Server, tour: &Tour, frac: f64) -> f64 {
    let mut client = IncrementalClient::connect(server, LinearSpeedMap);
    let mut smooth = mar_core::SmoothedSpeed::default();
    let mut first_bytes = 0.0;
    for (i, s) in tour.samples.iter().enumerate() {
        let frame = frame_at(&scene.config.space, &s.pos, frac);
        let r = client.tick(server, frame, smooth.update(s.speed));
        if i == 0 {
            first_bytes = r.bytes;
        }
    }
    let distance = tour.distance().max(1.0);
    (client.metrics().bytes - first_bytes) / 1024.0 * 1000.0 / distance
}

/// Means of per-seed results, regrouped row-by-row: `results` is laid out
/// `[outer0: seed0..seedN, outer1: seed0..seedN, ...]` and each chunk of
/// `seeds` consecutive values is averaged. Accumulation order equals the
/// point order, so the output is schedule-independent.
fn mean_per_chunk(results: &[f64], seeds: usize) -> Vec<f64> {
    results.chunks(seeds).map(mean).collect()
}

/// Fig. 8 — effect of speed on data retrieval (tram vs pedestrian).
pub fn fig8(scale: &Scale) -> Table {
    fig8_with(&Engine::serial(), scale)
}

/// [`fig8`] on an engine: one sweep point per (speed, tour seed), each
/// worker owning its own [`Server`] over the shared scene.
pub fn fig8_with(engine: &Engine, scale: &Scale) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let points: Vec<(f64, u64)> = scale
        .speeds
        .iter()
        .flat_map(|&sp| scale.tour_seeds.iter().map(move |&sd| (sp, sd)))
        .collect();
    let results = engine.run(
        points,
        || Server::new(&scene),
        |server, &(speed, seed)| {
            let ticks = ticks_for_distance(scale, speed);
            let tcfg = TourConfig::new(paper_space(), ticks, seed, speed);
            (
                retrieval_kb_per_kdist(&scene, server, &tram_tour(&tcfg), 0.1),
                retrieval_kb_per_kdist(&scene, server, &pedestrian_tour(&tcfg), 0.1),
            )
        },
    );
    let mut t = Table::new(
        "fig8",
        "data retrieved (KB per 1000 units traveled) vs speed",
        "speed",
        vec!["tram_kb_per_kdist".into(), "walk_kb_per_kdist".into()],
    );
    let seeds = scale.tour_seeds.len();
    for (i, &speed) in scale.speeds.iter().enumerate() {
        let chunk = &results[i * seeds..(i + 1) * seeds];
        let tram: Vec<f64> = chunk.iter().map(|r| r.0).collect();
        let walk: Vec<f64> = chunk.iter().map(|r| r.1).collect();
        t.push(speed, vec![mean(&tram), mean(&walk)]);
    }
    t
}

/// Fig. 9(a) — retrieval vs speed for query sizes 5–20 % (tram tours).
pub fn fig9a(scale: &Scale) -> Table {
    fig9a_with(&Engine::serial(), scale)
}

/// [`fig9a`] on an engine: one point per (speed, query fraction, seed).
pub fn fig9a_with(engine: &Engine, scale: &Scale) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let fracs = [0.05, 0.10, 0.15, 0.20];
    let points: Vec<(f64, f64, u64)> = scale
        .speeds
        .iter()
        .flat_map(|&sp| {
            fracs
                .iter()
                .flat_map(move |&f| scale.tour_seeds.iter().map(move |&sd| (sp, f, sd)))
        })
        .collect();
    let results = engine.run(
        points,
        || Server::new(&scene),
        |server, &(speed, frac, seed)| {
            let ticks = ticks_for_distance(scale, speed);
            let tour = tram_tour(&TourConfig::new(paper_space(), ticks, seed, speed));
            retrieval_kb_per_kdist(&scene, server, &tour, frac)
        },
    );
    let mut t = Table::new(
        "fig9a",
        "KB per 1000 units vs speed, per query size (tram)",
        "speed",
        fracs
            .iter()
            .map(|f| format!("q{:.0}%_kb", f * 100.0))
            .collect(),
    );
    let seeds = scale.tour_seeds.len();
    let per_speed = fracs.len() * seeds;
    for (i, &speed) in scale.speeds.iter().enumerate() {
        let chunk = &results[i * per_speed..(i + 1) * per_speed];
        t.push(speed, mean_per_chunk(chunk, seeds));
    }
    t
}

/// Fig. 9(b) — retrieval vs speed for dataset sizes 20–80 MB (tram tours).
pub fn fig9b(scale: &Scale) -> Table {
    fig9b_with(&Engine::serial(), scale)
}

/// [`fig9b`] on an engine: one point per (speed, dataset size, seed); each
/// worker lazily builds a server per size it encounters, over the
/// engine-cached scenes.
pub fn fig9b_with(engine: &Engine, scale: &Scale) -> Table {
    let sizes = [100usize, 200, 300, 400];
    let scaled: Vec<usize> = sizes
        .iter()
        .map(|&n| (n * scale.objects_default / 300).max(4))
        .collect();
    let scenes: Vec<Arc<Scene>> = scaled
        .iter()
        .map(|&n| engine.scene(scale, n, Placement::Uniform))
        .collect();
    let points: Vec<(f64, usize, u64)> = scale
        .speeds
        .iter()
        .flat_map(|&sp| {
            (0..scenes.len())
                .flat_map(move |si| scale.tour_seeds.iter().map(move |&sd| (sp, si, sd)))
        })
        .collect();
    let results = engine.run(
        points,
        || scenes.iter().map(|_| None).collect::<Vec<Option<Server>>>(),
        |servers, &(speed, si, seed)| {
            let server = servers[si].get_or_insert_with(|| Server::new(&scenes[si]));
            let ticks = ticks_for_distance(scale, speed);
            let tour = tram_tour(&TourConfig::new(paper_space(), ticks, seed, speed));
            retrieval_kb_per_kdist(&scenes[si], server, &tour, 0.1)
        },
    );
    let mut t = Table::new(
        "fig9b",
        "KB per 1000 units vs speed, per dataset size (tram)",
        "speed",
        sizes.iter().map(|n| format!("{}MB_kb", n / 5)).collect(),
    );
    let seeds = scale.tour_seeds.len();
    let per_speed = scenes.len() * seeds;
    for (i, &speed) in scale.speeds.iter().enumerate() {
        let chunk = &results[i * per_speed..(i + 1) * per_speed];
        t.push(speed, mean_per_chunk(chunk, seeds));
    }
    t
}

/// The four prefetcher/tour combinations every buffer experiment sweeps.
const BUFFER_COMBOS: [(bool, bool); 4] = [
    (true, true),   // motion-aware, tram
    (true, false),  // motion-aware, pedestrian
    (false, true),  // naive, tram
    (false, false), // naive, pedestrian
];

/// Runs one buffer-simulation sweep point: the given tour kind under the
/// given prefetcher. Returns `(hit_rate, utilization)`.
fn buffer_sim_point(
    server: &Server,
    scene: &Scene,
    tour: &Tour,
    motion_aware: bool,
    cfg: &BufferSimConfig,
) -> (f64, f64) {
    let m = if motion_aware {
        let mut p = MotionAwarePrefetcher::new(4);
        run_buffer_sim(server, scene, tour, &mut p, cfg)
    } else {
        let mut p = NaivePrefetcher;
        run_buffer_sim(server, scene, tour, &mut p, cfg)
    };
    (m.hit_rate(), m.utilization())
}

/// Shared engine runner for the buffer experiments: for each x, a
/// `(BufferSimConfig, speed)` pair; points fan out over
/// (x, combo, seed) and each worker reuses one server (simulations open
/// their own sessions, so reuse is exact).
#[allow(clippy::too_many_arguments)] // two parallel tables share one sweep
fn buffer_tables_with(
    engine: &Engine,
    scale: &Scale,
    xs: &[f64],
    mut cfg_of: impl FnMut(f64) -> (BufferSimConfig, f64),
    id_hit: &'static str,
    id_util: &'static str,
    title_hit: &'static str,
    title_util: &'static str,
    xlabel: &'static str,
) -> (Table, Table) {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let configs: Vec<(BufferSimConfig, f64)> = xs.iter().map(|&x| cfg_of(x)).collect();
    let points: Vec<(usize, usize, u64)> = (0..xs.len())
        .flat_map(|xi| {
            (0..BUFFER_COMBOS.len())
                .flat_map(move |ci| scale.tour_seeds.iter().map(move |&sd| (xi, ci, sd)))
        })
        .collect();
    let results = engine.run(
        points,
        || Server::new(&scene),
        |server, &(xi, ci, seed)| {
            let (cfg, speed) = &configs[xi];
            let (motion_aware, tram) = BUFFER_COMBOS[ci];
            let tcfg = TourConfig::new(paper_space(), scale.ticks, seed, *speed);
            let tour = if tram {
                tram_tour(&tcfg)
            } else {
                pedestrian_tour(&tcfg)
            };
            buffer_sim_point(server, &scene, &tour, motion_aware, cfg)
        },
    );
    let cols = vec![
        "ma_tram".to_string(),
        "ma_walk".to_string(),
        "naive_tram".to_string(),
        "naive_walk".to_string(),
    ];
    let mut t_hit = Table::new(id_hit, title_hit, xlabel, cols.clone());
    let mut t_util = Table::new(id_util, title_util, xlabel, cols);
    let seeds = scale.tour_seeds.len();
    let per_x = BUFFER_COMBOS.len() * seeds;
    for (xi, &x) in xs.iter().enumerate() {
        let chunk = &results[xi * per_x..(xi + 1) * per_x];
        let hits: Vec<f64> = chunk.iter().map(|r| r.0).collect();
        let utils: Vec<f64> = chunk.iter().map(|r| r.1).collect();
        t_hit.push(x, mean_per_chunk(&hits, seeds));
        t_util.push(x, mean_per_chunk(&utils, seeds));
    }
    (t_hit, t_util)
}

/// Fig. 10(a)+(b) — cache hit rate and data utilization vs buffer size
/// (16–128 KB), motion-aware vs naive, tram & pedestrian.
pub fn fig10(scale: &Scale) -> (Table, Table) {
    fig10_with(&Engine::serial(), scale)
}

/// [`fig10`] on an engine.
pub fn fig10_with(engine: &Engine, scale: &Scale) -> (Table, Table) {
    let sizes = [16.0, 32.0, 64.0, 128.0];
    buffer_tables_with(
        engine,
        scale,
        &sizes,
        |kb| {
            (
                BufferSimConfig {
                    buffer_bytes: kb * 1024.0,
                    ..Default::default()
                },
                0.5,
            )
        },
        "fig10a",
        "fig10b",
        "cache hit rate vs buffer size (KB)",
        "data utilization vs buffer size (KB)",
        "buffer_kb",
    )
}

/// Fig. 11(a)+(b) — cache hit rate and data utilization vs speed
/// (multiresolution buffering), 64 KB buffer.
pub fn fig11(scale: &Scale) -> (Table, Table) {
    fig11_with(&Engine::serial(), scale)
}

/// [`fig11`] on an engine.
pub fn fig11_with(engine: &Engine, scale: &Scale) -> (Table, Table) {
    let speeds = scale.speeds.clone();
    buffer_tables_with(
        engine,
        scale,
        &speeds,
        |speed| {
            (
                BufferSimConfig {
                    buffer_bytes: 64.0 * 1024.0,
                    ..Default::default()
                },
                speed,
            )
        },
        "fig11a",
        "fig11b",
        "cache hit rate vs speed (64 KB buffer)",
        "data utilization vs speed (64 KB buffer)",
        "speed",
    )
}

/// Average index I/O per query frame over one tram tour for both access
/// methods. Queries are read-only — the indexes are shared across workers.
fn index_io_seed(
    good: &WaveletIndex,
    naive: &NaivePointIndex,
    scale: &Scale,
    speed: f64,
    frac: f64,
    seed: u64,
) -> (f64, f64) {
    let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, speed));
    let mut g = 0u64;
    let mut n = 0u64;
    for s in &tour.samples {
        let frame = frame_at(&paper_space(), &s.pos, frac);
        let band = ResolutionBand::new(s.speed, 1.0);
        g += good.query(&frame, band).1;
        n += naive.query(&frame, band).1;
    }
    (g as f64 / tour.len() as f64, n as f64 / tour.len() as f64)
}

/// Regroups per-seed `(good, naive)` I/O pairs into per-x mean rows.
fn index_io_rows(results: &[(f64, f64)], seeds: usize) -> Vec<Vec<f64>> {
    results
        .chunks(seeds)
        .map(|chunk| {
            let g: Vec<f64> = chunk.iter().map(|r| r.0).collect();
            let n: Vec<f64> = chunk.iter().map(|r| r.1).collect();
            vec![mean(&g), mean(&n)]
        })
        .collect()
}

/// Fig. 12 — index I/O vs speed: support-region index vs naive point
/// index.
pub fn fig12(scale: &Scale) -> Table {
    fig12_with(&Engine::serial(), scale)
}

/// [`fig12`] on an engine: indexes built once, shared read-only across
/// workers; one point per (speed, seed).
pub fn fig12_with(engine: &Engine, scale: &Scale) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let data = SceneIndexData::build(&scene);
    let good = WaveletIndex::build(&data);
    let naive = NaivePointIndex::build(&data);
    let points: Vec<(f64, u64)> = scale
        .speeds
        .iter()
        .flat_map(|&sp| scale.tour_seeds.iter().map(move |&sd| (sp, sd)))
        .collect();
    let results = engine.run(
        points,
        || (),
        |_, &(speed, seed)| index_io_seed(&good, &naive, scale, speed, 0.1, seed),
    );
    let mut t = Table::new(
        "fig12",
        "index node accesses per query vs speed",
        "speed",
        vec!["motion_aware_io".into(), "naive_io".into()],
    );
    for (&speed, row) in scale
        .speeds
        .iter()
        .zip(index_io_rows(&results, scale.tour_seeds.len()))
    {
        t.push(speed, row);
    }
    t
}

/// Fig. 13(a) — index I/O vs query size at speed 0.5.
pub fn fig13a(scale: &Scale) -> Table {
    fig13a_with(&Engine::serial(), scale)
}

/// [`fig13a`] on an engine: one point per (query fraction, seed).
pub fn fig13a_with(engine: &Engine, scale: &Scale) -> Table {
    let scene = engine.scene(scale, scale.objects_default, Placement::Uniform);
    let data = SceneIndexData::build(&scene);
    let good = WaveletIndex::build(&data);
    let naive = NaivePointIndex::build(&data);
    let fracs = [0.05, 0.10, 0.15, 0.20];
    let points: Vec<(f64, u64)> = fracs
        .iter()
        .flat_map(|&f| scale.tour_seeds.iter().map(move |&sd| (f, sd)))
        .collect();
    let results = engine.run(
        points,
        || (),
        |_, &(frac, seed)| index_io_seed(&good, &naive, scale, 0.5, frac, seed),
    );
    let mut t = Table::new(
        "fig13a",
        "index node accesses per query vs query size (speed 0.5)",
        "query_pct",
        vec!["motion_aware_io".into(), "naive_io".into()],
    );
    for (&frac, row) in fracs
        .iter()
        .zip(index_io_rows(&results, scale.tour_seeds.len()))
    {
        t.push(frac * 100.0, row);
    }
    t
}

/// Fig. 13(b) — index I/O vs dataset size at speed 0.5, 10 % frames.
pub fn fig13b(scale: &Scale) -> Table {
    fig13b_with(&Engine::serial(), scale)
}

/// [`fig13b`] on an engine: one point per dataset size; each point builds
/// its indexes over the engine-cached scene of that size.
pub fn fig13b_with(engine: &Engine, scale: &Scale) -> Table {
    let sizes = [100usize, 200, 300, 400];
    let scaled: Vec<usize> = sizes
        .iter()
        .map(|&n| (n * scale.objects_default / 300).max(4))
        .collect();
    let results = engine.run(
        scaled.clone(),
        || (),
        |_, &n| {
            let scene = engine.scene(scale, n, Placement::Uniform);
            let data = SceneIndexData::build(&scene);
            let good = WaveletIndex::build(&data);
            let naive = NaivePointIndex::build(&data);
            let per_seed: Vec<(f64, f64)> = scale
                .tour_seeds
                .iter()
                .map(|&sd| index_io_seed(&good, &naive, scale, 0.5, 0.1, sd))
                .collect();
            let g: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
            let nv: Vec<f64> = per_seed.iter().map(|r| r.1).collect();
            (mean(&g), mean(&nv))
        },
    );
    let mut t = Table::new(
        "fig13b",
        "index node accesses per query vs dataset size (speed 0.5)",
        "dataset_mb",
        vec!["motion_aware_io".into(), "naive_io".into()],
    );
    for (&label, &(g, n)) in sizes.iter().zip(&results) {
        t.push((label / 5) as f64, vec![g, n]);
    }
    t
}

/// Figs. 14 & 15 — end-to-end query response time vs speed, motion-aware
/// vs naive system, for uniform (fig14) or Zipfian (fig15) data.
pub fn fig14_15(scale: &Scale, placement: Placement) -> Table {
    fig14_15_with(&Engine::serial(), scale, placement)
}

/// [`fig14_15`] on an engine: one point per (speed, seed, tour kind).
pub fn fig14_15_with(engine: &Engine, scale: &Scale, placement: Placement) -> Table {
    let (id, title): (&'static str, &'static str) = match placement {
        Placement::Uniform => ("fig14", "query response time (s) vs speed (uniform)"),
        Placement::Zipf { .. } => ("fig15", "query response time (s) vs speed (Zipf)"),
    };
    let scene = engine.scene(scale, scale.objects_default, placement);
    let cfg = SystemConfig::default();
    // Point order: speed → seed → (tram, walk).
    let points: Vec<(f64, u64, bool)> = scale
        .speeds
        .iter()
        .flat_map(|&sp| {
            scale
                .tour_seeds
                .iter()
                .flat_map(move |&sd| [(sp, sd, true), (sp, sd, false)])
        })
        .collect();
    let results = engine.run(
        points,
        || Server::new(&scene),
        |server, &(speed, seed, tram)| {
            let tcfg = TourConfig::new(paper_space(), scale.ticks, seed, speed);
            let tour = if tram {
                tram_tour(&tcfg)
            } else {
                pedestrian_tour(&tcfg)
            };
            let mut p = MotionAwarePrefetcher::new(4);
            let ma = run_motion_aware_system(server, &scene, &tour, &mut p, &cfg);
            let nv = run_naive_system(server, &scene, &tour, &cfg);
            (ma.mean_response(), nv.mean_response())
        },
    );
    let mut t = Table::new(
        id,
        title,
        "speed",
        vec![
            "ma_tram_s".into(),
            "ma_walk_s".into(),
            "naive_tram_s".into(),
            "naive_walk_s".into(),
        ],
    );
    let seeds = scale.tour_seeds.len();
    let per_speed = seeds * 2;
    for (i, &speed) in scale.speeds.iter().enumerate() {
        let chunk = &results[i * per_speed..(i + 1) * per_speed];
        // chunk is [seed0 tram, seed0 walk, seed1 tram, ...].
        let col = |kind: usize, which: fn(&(f64, f64)) -> f64| -> f64 {
            let vals: Vec<f64> = chunk.iter().skip(kind).step_by(2).map(which).collect();
            mean(&vals)
        };
        t.push(
            speed,
            vec![
                col(0, |r| r.0),
                col(1, |r| r.0),
                col(0, |r| r.1),
                col(1, |r| r.1),
            ],
        );
    }
    t
}

/// Every figure at the given scale, in paper order, on a serial engine.
/// `fig10`/`fig11` each contribute two tables.
pub fn all_figures(scale: &Scale) -> Vec<Table> {
    all_figures_with(&Engine::serial(), scale)
}

/// Every figure at the given scale on the given engine, in paper order.
pub fn all_figures_with(engine: &Engine, scale: &Scale) -> Vec<Table> {
    let mut out = Vec::new();
    out.push(fig8_with(engine, scale));
    out.push(fig9a_with(engine, scale));
    out.push(fig9b_with(engine, scale));
    let (a, b) = fig10_with(engine, scale);
    out.push(a);
    out.push(b);
    let (a, b) = fig11_with(engine, scale);
    out.push(a);
    out.push(b);
    out.push(fig12_with(engine, scale));
    out.push(fig13a_with(engine, scale));
    out.push(fig13b_with(engine, scale));
    out.push(fig14_15_with(engine, scale, Placement::Uniform));
    out.push(fig14_15_with(engine, scale, Placement::Zipf { theta: 0.8 }));
    out
}
