//! One row-generator per figure of §VII. See DESIGN.md §3 for the mapping
//! and EXPERIMENTS.md for paper-vs-measured results.

use crate::{Scale, Table};
use mar_buffer::{MotionAwarePrefetcher, NaivePrefetcher};
use mar_core::bufsim::{run_buffer_sim, BufferSimConfig};
use mar_core::system::{run_motion_aware_system, run_naive_system, SystemConfig};
use mar_core::{
    IncrementalClient, LinearSpeedMap, NaivePointIndex, SceneIndexData, Server, WaveletIndex,
};
use mar_mesh::ResolutionBand;
use mar_workload::{
    frame_at, paper_space, pedestrian_tour, tram_tour, Placement, Scene, SceneConfig, Tour,
    TourConfig,
};

/// Builds the scene for `objects` objects under the scale's parameters.
pub fn build_scene(scale: &Scale, objects: usize, placement: Placement) -> Scene {
    let mut cfg = SceneConfig::paper(objects, scale.scene_seed);
    cfg.levels = scale.levels;
    cfg.target_bytes = objects as f64 * scale.bytes_per_object;
    cfg.placement = placement;
    Scene::generate(cfg)
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Fig. 8/9 measure clients "traveling similar distances at varying
/// speeds": a slow client needs more ticks to cover the same ground. This
/// returns the tick count for a nominal tour distance, capped to keep the
/// slowest sweeps tractable.
fn ticks_for_distance(scale: &Scale, speed: f64) -> usize {
    let max_step = TourConfig::new(paper_space(), 1, 0, speed).max_step;
    // Scale the nominal distance with the experiment scale so quick runs
    // stay quick; slow clients always get enough ticks to actually cover
    // it (each tick is a cheap sliver query, so even 10^5 ticks are fine).
    let target_distance = 600.0 + scale.ticks as f64;
    let ticks = (target_distance / (speed.max(1e-3) * max_step)).ceil() as usize;
    ticks.clamp(50, 100_000)
}

/// KB retrieved per 1000 units of distance traveled by the incremental
/// client (the initial frame fill is excluded — the paper's tours are long
/// enough to amortise it away, ours are capped).
fn retrieval_kb_per_kdist(scene: &Scene, server: &mut Server, tour: &Tour, frac: f64) -> f64 {
    let mut client = IncrementalClient::connect(server, LinearSpeedMap);
    let mut smooth = mar_core::SmoothedSpeed::default();
    let mut first_bytes = 0.0;
    for (i, s) in tour.samples.iter().enumerate() {
        let frame = frame_at(&scene.config.space, &s.pos, frac);
        let r = client.tick(server, frame, smooth.update(s.speed));
        if i == 0 {
            first_bytes = r.bytes;
        }
    }
    let distance = tour.distance().max(1.0);
    (client.metrics().bytes - first_bytes) / 1024.0 * 1000.0 / distance
}

/// Fig. 8 — effect of speed on data retrieval (tram vs pedestrian).
pub fn fig8(scale: &Scale) -> Table {
    let scene = build_scene(scale, scale.objects_default, Placement::Uniform);
    let mut server = Server::new(&scene);
    let mut t = Table::new(
        "fig8",
        "data retrieved (KB per 1000 units traveled) vs speed",
        "speed",
        vec!["tram_kb_per_kdist".into(), "walk_kb_per_kdist".into()],
    );
    for &speed in &scale.speeds {
        let ticks = ticks_for_distance(scale, speed);
        let mut tram = Vec::new();
        let mut walk = Vec::new();
        for &seed in &scale.tour_seeds {
            let tcfg = TourConfig::new(paper_space(), ticks, seed, speed);
            tram.push(retrieval_kb_per_kdist(
                &scene,
                &mut server,
                &tram_tour(&tcfg),
                0.1,
            ));
            walk.push(retrieval_kb_per_kdist(
                &scene,
                &mut server,
                &pedestrian_tour(&tcfg),
                0.1,
            ));
        }
        t.push(speed, vec![mean(&tram), mean(&walk)]);
    }
    t
}

/// Fig. 9(a) — retrieval vs speed for query sizes 5–20 % (tram tours).
pub fn fig9a(scale: &Scale) -> Table {
    let scene = build_scene(scale, scale.objects_default, Placement::Uniform);
    let mut server = Server::new(&scene);
    let fracs = [0.05, 0.10, 0.15, 0.20];
    let mut t = Table::new(
        "fig9a",
        "KB per 1000 units vs speed, per query size (tram)",
        "speed",
        fracs
            .iter()
            .map(|f| format!("q{:.0}%_kb", f * 100.0))
            .collect(),
    );
    for &speed in &scale.speeds {
        let ticks = ticks_for_distance(scale, speed);
        let mut row = Vec::new();
        for &frac in &fracs {
            let mut vals = Vec::new();
            for &seed in &scale.tour_seeds {
                let tour = tram_tour(&TourConfig::new(paper_space(), ticks, seed, speed));
                vals.push(retrieval_kb_per_kdist(&scene, &mut server, &tour, frac));
            }
            row.push(mean(&vals));
        }
        t.push(speed, row);
    }
    t
}

/// Fig. 9(b) — retrieval vs speed for dataset sizes 20–80 MB (tram tours).
pub fn fig9b(scale: &Scale) -> Table {
    let sizes = [100usize, 200, 300, 400];
    let scaled: Vec<usize> = sizes
        .iter()
        .map(|&n| (n * scale.objects_default / 300).max(4))
        .collect();
    let mut t = Table::new(
        "fig9b",
        "KB per 1000 units vs speed, per dataset size (tram)",
        "speed",
        sizes.iter().map(|n| format!("{}MB_kb", n / 5)).collect(),
    );
    let scenes: Vec<(Scene, Server)> = scaled
        .iter()
        .map(|&n| {
            let scene = build_scene(scale, n, Placement::Uniform);
            let server = Server::new(&scene);
            (scene, server)
        })
        .collect();
    let mut scenes = scenes;
    for &speed in &scale.speeds {
        let ticks = ticks_for_distance(scale, speed);
        let mut row = Vec::new();
        for (scene, server) in &mut scenes {
            let mut vals = Vec::new();
            for &seed in &scale.tour_seeds {
                let tour = tram_tour(&TourConfig::new(paper_space(), ticks, seed, speed));
                vals.push(retrieval_kb_per_kdist(scene, server, &tour, 0.1));
            }
            row.push(mean(&vals));
        }
        t.push(speed, row);
    }
    t
}

/// Shared runner for the buffer experiments: returns
/// `(hit, util)` for a prefetcher over tours of one kind.
fn buffer_point(
    scene: &Scene,
    tours: &[Tour],
    motion_aware: bool,
    cfg: &BufferSimConfig,
) -> (f64, f64) {
    let mut hits = Vec::new();
    let mut utils = Vec::new();
    for tour in tours {
        let mut server = Server::new(scene);
        let m = if motion_aware {
            let mut p = MotionAwarePrefetcher::new(4);
            run_buffer_sim(&mut server, scene, tour, &mut p, cfg)
        } else {
            let mut p = NaivePrefetcher;
            run_buffer_sim(&mut server, scene, tour, &mut p, cfg)
        };
        hits.push(m.hit_rate());
        utils.push(m.utilization());
    }
    (mean(&hits), mean(&utils))
}

#[allow(clippy::too_many_arguments)] // two parallel tables share one sweep
fn buffer_tables(
    scale: &Scale,
    xs: &[f64],
    mut cfg_of: impl FnMut(f64) -> (BufferSimConfig, f64),
    id_hit: &'static str,
    id_util: &'static str,
    title_hit: &'static str,
    title_util: &'static str,
    xlabel: &'static str,
) -> (Table, Table) {
    let scene = build_scene(scale, scale.objects_default, Placement::Uniform);
    let cols = vec![
        "ma_tram".to_string(),
        "ma_walk".to_string(),
        "naive_tram".to_string(),
        "naive_walk".to_string(),
    ];
    let mut t_hit = Table::new(id_hit, title_hit, xlabel, cols.clone());
    let mut t_util = Table::new(id_util, title_util, xlabel, cols);
    for &x in xs {
        let (cfg, speed) = cfg_of(x);
        let trams: Vec<Tour> = scale
            .tour_seeds
            .iter()
            .map(|&s| tram_tour(&TourConfig::new(paper_space(), scale.ticks, s, speed)))
            .collect();
        let walks: Vec<Tour> = scale
            .tour_seeds
            .iter()
            .map(|&s| pedestrian_tour(&TourConfig::new(paper_space(), scale.ticks, s, speed)))
            .collect();
        let (h_mt, u_mt) = buffer_point(&scene, &trams, true, &cfg);
        let (h_mw, u_mw) = buffer_point(&scene, &walks, true, &cfg);
        let (h_nt, u_nt) = buffer_point(&scene, &trams, false, &cfg);
        let (h_nw, u_nw) = buffer_point(&scene, &walks, false, &cfg);
        t_hit.push(x, vec![h_mt, h_mw, h_nt, h_nw]);
        t_util.push(x, vec![u_mt, u_mw, u_nt, u_nw]);
    }
    (t_hit, t_util)
}

/// Fig. 10(a)+(b) — cache hit rate and data utilization vs buffer size
/// (16–128 KB), motion-aware vs naive, tram & pedestrian.
pub fn fig10(scale: &Scale) -> (Table, Table) {
    let sizes = [16.0, 32.0, 64.0, 128.0];
    buffer_tables(
        scale,
        &sizes,
        |kb| {
            (
                BufferSimConfig {
                    buffer_bytes: kb * 1024.0,
                    ..Default::default()
                },
                0.5,
            )
        },
        "fig10a",
        "fig10b",
        "cache hit rate vs buffer size (KB)",
        "data utilization vs buffer size (KB)",
        "buffer_kb",
    )
}

/// Fig. 11(a)+(b) — cache hit rate and data utilization vs speed
/// (multiresolution buffering), 64 KB buffer.
pub fn fig11(scale: &Scale) -> (Table, Table) {
    let speeds = scale.speeds.clone();
    buffer_tables(
        scale,
        &speeds,
        |speed| {
            (
                BufferSimConfig {
                    buffer_bytes: 64.0 * 1024.0,
                    ..Default::default()
                },
                speed,
            )
        },
        "fig11a",
        "fig11b",
        "cache hit rate vs speed (64 KB buffer)",
        "data utilization vs speed (64 KB buffer)",
        "speed",
    )
}

/// Average index I/O per query frame over tram tours for both access
/// methods.
fn index_io_point(
    data: &SceneIndexData,
    good: &WaveletIndex,
    naive: &NaivePointIndex,
    scale: &Scale,
    speed: f64,
    frac: f64,
) -> (f64, f64) {
    let _ = data;
    let mut io_good = Vec::new();
    let mut io_naive = Vec::new();
    for &seed in &scale.tour_seeds {
        let tour = tram_tour(&TourConfig::new(paper_space(), scale.ticks, seed, speed));
        let mut g = 0u64;
        let mut n = 0u64;
        for s in &tour.samples {
            let frame = frame_at(&paper_space(), &s.pos, frac);
            let band = ResolutionBand::new(s.speed, 1.0);
            g += good.query(&frame, band).1;
            n += naive.query(&frame, band).1;
        }
        io_good.push(g as f64 / tour.len() as f64);
        io_naive.push(n as f64 / tour.len() as f64);
    }
    (mean(&io_good), mean(&io_naive))
}

/// Fig. 12 — index I/O vs speed: support-region index vs naive point
/// index.
pub fn fig12(scale: &Scale) -> Table {
    let scene = build_scene(scale, scale.objects_default, Placement::Uniform);
    let data = SceneIndexData::build(&scene);
    let good = WaveletIndex::build(&data);
    let naive = NaivePointIndex::build(&data);
    let mut t = Table::new(
        "fig12",
        "index node accesses per query vs speed",
        "speed",
        vec!["motion_aware_io".into(), "naive_io".into()],
    );
    for &speed in &scale.speeds {
        let (g, n) = index_io_point(&data, &good, &naive, scale, speed, 0.1);
        t.push(speed, vec![g, n]);
    }
    t
}

/// Fig. 13(a) — index I/O vs query size at speed 0.5.
pub fn fig13a(scale: &Scale) -> Table {
    let scene = build_scene(scale, scale.objects_default, Placement::Uniform);
    let data = SceneIndexData::build(&scene);
    let good = WaveletIndex::build(&data);
    let naive = NaivePointIndex::build(&data);
    let mut t = Table::new(
        "fig13a",
        "index node accesses per query vs query size (speed 0.5)",
        "query_pct",
        vec!["motion_aware_io".into(), "naive_io".into()],
    );
    for frac in [0.05, 0.10, 0.15, 0.20] {
        let (g, n) = index_io_point(&data, &good, &naive, scale, 0.5, frac);
        t.push(frac * 100.0, vec![g, n]);
    }
    t
}

/// Fig. 13(b) — index I/O vs dataset size at speed 0.5, 10 % frames.
pub fn fig13b(scale: &Scale) -> Table {
    let sizes = [100usize, 200, 300, 400];
    let scaled: Vec<usize> = sizes
        .iter()
        .map(|&n| (n * scale.objects_default / 300).max(4))
        .collect();
    let mut t = Table::new(
        "fig13b",
        "index node accesses per query vs dataset size (speed 0.5)",
        "dataset_mb",
        vec!["motion_aware_io".into(), "naive_io".into()],
    );
    for (&label, &n) in sizes.iter().zip(&scaled) {
        let scene = build_scene(scale, n, Placement::Uniform);
        let data = SceneIndexData::build(&scene);
        let good = WaveletIndex::build(&data);
        let naive = NaivePointIndex::build(&data);
        let (g, nv) = index_io_point(&data, &good, &naive, scale, 0.5, 0.1);
        t.push((label / 5) as f64, vec![g, nv]);
    }
    t
}

/// Figs. 14 & 15 — end-to-end query response time vs speed, motion-aware
/// vs naive system, for uniform (fig14) or Zipfian (fig15) data.
pub fn fig14_15(scale: &Scale, placement: Placement) -> Table {
    let (id, title): (&'static str, &'static str) = match placement {
        Placement::Uniform => ("fig14", "query response time (s) vs speed (uniform)"),
        Placement::Zipf { .. } => ("fig15", "query response time (s) vs speed (Zipf)"),
    };
    let scene = build_scene(scale, scale.objects_default, placement);
    let cfg = SystemConfig::default();
    let mut t = Table::new(
        id,
        title,
        "speed",
        vec![
            "ma_tram_s".into(),
            "ma_walk_s".into(),
            "naive_tram_s".into(),
            "naive_walk_s".into(),
        ],
    );
    for &speed in &scale.speeds {
        let mut vals = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for &seed in &scale.tour_seeds {
            let tcfg = TourConfig::new(paper_space(), scale.ticks, seed, speed);
            let tram = tram_tour(&tcfg);
            let walk = pedestrian_tour(&tcfg);
            for (i, tour) in [&tram, &walk].into_iter().enumerate() {
                let mut server = Server::new(&scene);
                let mut p = MotionAwarePrefetcher::new(4);
                let ma = run_motion_aware_system(&mut server, &scene, tour, &mut p, &cfg);
                vals[i].push(ma.mean_response());
                let nv = run_naive_system(&server, &scene, tour, &cfg);
                vals[i + 2].push(nv.mean_response());
            }
        }
        t.push(speed, vals.iter().map(|v| mean(v)).collect());
    }
    t
}

/// Every figure at the given scale, in paper order. `fig10`/`fig11` each
/// contribute two tables.
pub fn all_figures(scale: &Scale) -> Vec<Table> {
    let mut out = Vec::new();
    out.push(fig8(scale));
    out.push(fig9a(scale));
    out.push(fig9b(scale));
    let (a, b) = fig10(scale);
    out.push(a);
    out.push(b);
    let (a, b) = fig11(scale);
    out.push(a);
    out.push(b);
    out.push(fig12(scale));
    out.push(fig13a(scale));
    out.push(fig13b(scale));
    out.push(fig14_15(scale, Placement::Uniform));
    out.push(fig14_15(scale, Placement::Zipf { theta: 0.8 }));
    out
}
