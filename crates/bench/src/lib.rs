//! # mar-bench — the reproduction harness
//!
//! Shared machinery for regenerating every figure of the paper's
//! evaluation (§VII). Each `figN` function in [`figs`] produces a
//! [`Table`] — the same series the paper plots — and is callable both from
//! the `reproduce` binary (full experiment) and from the Criterion benches
//! (which additionally time the hot operations).
//!
//! Determinism: every experiment is seeded; two runs of `reproduce`
//! produce byte-identical tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod chaos;
pub mod engine;
pub mod figs;
pub mod fleet;
pub mod serve;

/// A result table: one labelled x column plus named data series.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "fig8".
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Label of the x column.
    pub xlabel: &'static str,
    /// Names of the data series.
    pub columns: Vec<String>,
    /// Rows: x value plus one value per series.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: &'static str,
        title: &'static str,
        xlabel: &'static str,
        columns: Vec<String>,
    ) -> Self {
        Self {
            id,
            title,
            xlabel,
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the value count does not match the series count.
    pub fn push(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        self.rows.push((x, values));
    }

    /// Renders the table for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n## {} — {}\n", self.id, self.title));
        out.push_str(&format!("{:>12}", self.xlabel));
        for c in &self.columns {
            out.push_str(&format!("  {c:>18}"));
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&format!("{x:>12.4}"));
            for v in vals {
                out.push_str(&format!("  {v:>18.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(self.xlabel);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&format!("{x}"));
            for v in vals {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// The series named `name`, if present.
    pub fn series(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|(_, v)| v[idx]).collect())
    }
}

/// Experiment scale: `quick` for CI-sized runs, `paper` for the full
/// §VII-A parameters.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Tour length in ticks.
    pub ticks: usize,
    /// Normalised speeds to sweep (the paper's 0.001–1.0).
    pub speeds: Vec<f64>,
    /// Objects in the default (60 MB-equivalent) dataset.
    pub objects_default: usize,
    /// Bytes per object (0.2 MB in the paper).
    pub bytes_per_object: f64,
    /// Subdivision levels per object.
    pub levels: usize,
    /// Tour seeds averaged per data point.
    pub tour_seeds: Vec<u64>,
    /// Scene seed.
    pub scene_seed: u64,
}

impl Scale {
    /// CI-sized: small scenes, short tours, 4 speeds. Seconds per figure.
    pub fn quick() -> Self {
        Self {
            ticks: 200,
            speeds: vec![0.001, 0.25, 0.5, 1.0],
            objects_default: 60,
            bytes_per_object: 0.2 * 1024.0 * 1024.0,
            levels: 3,
            tour_seeds: vec![101],
            scene_seed: 42,
        }
    }

    /// Paper-sized: 300-object 60 MB default dataset, 6-point speed sweep,
    /// multi-seed tours.
    pub fn paper() -> Self {
        Self {
            ticks: 500,
            speeds: vec![0.001, 0.1, 0.25, 0.5, 0.75, 1.0],
            objects_default: 300,
            bytes_per_object: 0.2 * 1024.0 * 1024.0,
            levels: 4,
            tour_seeds: vec![101, 202, 303],
            scene_seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("figX", "test", "speed", vec!["a".into(), "b".into()]);
        t.push(0.5, vec![1.0, 2.0]);
        t.push(1.0, vec![3.0, 4.0]);
        assert_eq!(t.series("a"), Some(vec![1.0, 3.0]));
        assert_eq!(t.series("b"), Some(vec![2.0, 4.0]));
        assert!(t.series("c").is_none());
        let csv = t.to_csv();
        assert!(csv.starts_with("speed,a,b\n"));
        assert!(csv.contains("0.5,1,2"));
        let render = t.render();
        assert!(render.contains("figX"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_arity_checked() {
        let mut t = Table::new("figX", "test", "x", vec!["a".into()]);
        t.push(0.0, vec![1.0, 2.0]);
    }
}
