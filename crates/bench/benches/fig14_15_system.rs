//! Figs. 14–15 — end-to-end system response time, motion-aware vs naive.

use criterion::{criterion_group, criterion_main, Criterion};
use mar_bench::{figs, Scale};
use mar_buffer::MotionAwarePrefetcher;
use mar_core::system::{run_motion_aware_system, run_naive_system, SystemConfig};
use mar_core::Server;
use mar_workload::{paper_space, tram_tour, Placement, TourConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let scene = figs::build_scene(&scale, 30, Placement::Uniform);
    let tour = tram_tour(&TourConfig::new(paper_space(), 100, 9, 0.8));
    let cfg = SystemConfig::default();
    let mut group = c.benchmark_group("fig14_system_tour");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("motion_aware", |b| {
        b.iter(|| {
            let server = Server::new(&scene);
            let mut p = MotionAwarePrefetcher::new(4);
            black_box(run_motion_aware_system(
                &server, &scene, &tour, &mut p, &cfg,
            ))
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let server = Server::new(&scene);
            black_box(run_naive_system(&server, &scene, &tour, &cfg))
        })
    });
    group.finish();
    print!("{}", figs::fig14_15(&scale, Placement::Uniform).render());
    print!(
        "{}",
        figs::fig14_15(&scale, Placement::Zipf { theta: 0.8 }).render()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
