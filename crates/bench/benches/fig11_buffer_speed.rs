//! Fig. 11 — speed-scaled multiresolution buffering.

use criterion::{criterion_group, criterion_main, Criterion};
use mar_bench::{figs, Scale};
use mar_motion::{MotionPredictor, PredictorConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_motion_prediction");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    // The predictor pipeline, isolated: observe + multi-step predict.
    group.bench_function("observe_predict_h4", |b| {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        let mut t = 0.0f64;
        b.iter(|| {
            t += 1.0;
            p.observe(mar_geom::Point2::new([t, (t * 0.1).sin() * 50.0]));
            black_box(p.predict_horizon(4))
        })
    });
    let grid = mar_geom::GridSpec::new(mar_workload::paper_space(), 25, 25);
    group.bench_function("block_probabilities", |b| {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        for i in 0..50 {
            p.observe(mar_geom::Point2::new([i as f64 * 5.0, 500.0]));
        }
        let preds = p.predict_horizon(4);
        b.iter(|| {
            black_box(mar_motion::probability::gaussian_block_probabilities(
                &grid, &preds,
            ))
        })
    });
    group.finish();
    let scale = Scale::quick();
    let (a, b) = figs::fig11(&scale);
    print!("{}", a.render());
    print!("{}", b.render());
}

criterion_group!(benches, bench);
criterion_main!(benches);
