//! Fig. 9(a)/(b) — effect of query-frame size and dataset size on
//! retrieval volume.

use criterion::{criterion_group, criterion_main, Criterion};
use mar_bench::{figs, Scale};
use mar_core::Server;
use mar_mesh::ResolutionBand;
use mar_workload::Placement;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let scene = figs::build_scene(&scale, 60, Placement::Uniform);
    let server = Server::new(&scene);
    let mut group = c.benchmark_group("fig9_window_query");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for frac in [0.05, 0.20] {
        let side = 1000.0 * frac;
        let w = mar_geom::Rect2::new(
            mar_geom::Point2::new([400.0, 400.0]),
            mar_geom::Point2::new([400.0 + side, 400.0 + side]),
        );
        group.bench_function(format!("frame_{}pct", (frac * 100.0) as u32), |b| {
            b.iter(|| black_box(server.query_stateless(&w, ResolutionBand::new(0.5, 1.0))))
        });
    }
    group.finish();
    print!("{}", figs::fig9a(&scale).render());
    print!("{}", figs::fig9b(&scale).render());
}

criterion_group!(benches, bench);
criterion_main!(benches);
