//! Fig. 12 — I/O cost of the wavelet support-region index vs the naive
//! point index across speeds.

use criterion::{criterion_group, criterion_main, Criterion};
use mar_bench::{figs, Scale};
use mar_core::{NaivePointIndex, SceneIndexData, WaveletIndex};
use mar_mesh::ResolutionBand;
use mar_workload::Placement;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let scene = figs::build_scene(&scale, 60, Placement::Uniform);
    let data = SceneIndexData::build(&scene);
    let good = WaveletIndex::build(&data);
    let naive = NaivePointIndex::build(&data);
    let w = mar_geom::Rect2::new(
        mar_geom::Point2::new([300.0, 300.0]),
        mar_geom::Point2::new([400.0, 400.0]),
    );
    let mut group = c.benchmark_group("fig12_index_query");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, band) in [
        ("slow_full_band", ResolutionBand::FULL),
        ("fast_coarse_band", ResolutionBand::new(0.9, 1.0)),
    ] {
        group.bench_function(format!("support_{name}"), |b| {
            b.iter(|| black_box(good.query(&w, band)))
        });
        group.bench_function(format!("naive_{name}"), |b| {
            b.iter(|| black_box(naive.query(&w, band)))
        });
    }
    group.finish();
    print!("{}", figs::fig12(&scale).render());
}

criterion_group!(benches, bench);
criterion_main!(benches);
