//! Fig. 13 — I/O vs query size and dataset size; also times bulk loading.

use criterion::{criterion_group, criterion_main, Criterion};
use mar_bench::{figs, Scale};
use mar_core::{SceneIndexData, WaveletIndex};
use mar_workload::Placement;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let scene = figs::build_scene(&scale, 60, Placement::Uniform);
    let data = SceneIndexData::build(&scene);
    let mut group = c.benchmark_group("fig13_index_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function(format!("bulk_load_{}_coeffs", data.len()), |b| {
        b.iter(|| black_box(WaveletIndex::build(&data)))
    });
    group.finish();
    print!("{}", figs::fig13a(&scale).render());
    print!("{}", figs::fig13b(&scale).render());
}

criterion_group!(benches, bench);
criterion_main!(benches);
