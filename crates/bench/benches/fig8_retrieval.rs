//! Fig. 8 — motion-aware continuous retrieval vs speed.
//!
//! Times the per-frame cost of Algorithm 1 at a slow and a fast speed and
//! regenerates the figure's table at quick scale (the full table comes
//! from `cargo run -p mar-bench --release --bin reproduce -- --paper`).

use criterion::{criterion_group, criterion_main, Criterion};
use mar_bench::{figs, Scale};
use mar_core::{IncrementalClient, LinearSpeedMap, Server};
use mar_workload::{frame_at, paper_space, tram_tour, Placement, TourConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let scene = figs::build_scene(&scale, 30, Placement::Uniform);
    let mut group = c.benchmark_group("fig8_incremental_tick");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for speed in [0.001, 1.0] {
        let tour = tram_tour(&TourConfig::new(paper_space(), 200, 7, speed));
        group.bench_function(format!("speed_{speed}"), |b| {
            b.iter(|| {
                let server = Server::new(&scene);
                let mut client = IncrementalClient::connect(&server, LinearSpeedMap);
                for s in &tour.samples {
                    let frame = frame_at(&paper_space(), &s.pos, 0.1);
                    black_box(client.tick(&server, frame, s.speed));
                }
                client.metrics().bytes
            })
        });
    }
    group.finish();
    print!("{}", figs::fig8(&scale).render());
}

criterion_group!(benches, bench);
criterion_main!(benches);
