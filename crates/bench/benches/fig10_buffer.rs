//! Fig. 10 — motion-aware vs naive buffer management across buffer sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use mar_bench::{figs, Scale};
use mar_buffer::{MotionAwarePrefetcher, NaivePrefetcher, Prefetcher};
use mar_core::bufsim::{run_buffer_sim, BufferSimConfig};
use mar_core::Server;
use mar_workload::{paper_space, tram_tour, Placement, TourConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let scene = figs::build_scene(&scale, 30, Placement::Uniform);
    let tour = tram_tour(&TourConfig::new(paper_space(), 120, 5, 0.5));
    let cfg = BufferSimConfig::default();
    let mut group = c.benchmark_group("fig10_buffer_sim");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("motion_aware", |b| {
        b.iter(|| {
            let server = Server::new(&scene);
            let mut p = MotionAwarePrefetcher::new(4);
            black_box(run_buffer_sim(&server, &scene, &tour, &mut p, &cfg))
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let server = Server::new(&scene);
            let mut p = NaivePrefetcher;
            black_box(run_buffer_sim(&server, &scene, &tour, &mut p, &cfg))
        })
    });
    // The planner itself, isolated.
    let grid = mar_geom::GridSpec::new(paper_space(), 25, 25);
    let probs = {
        let mut predictor = mar_motion::MotionPredictor::new(Default::default());
        for s in tour.samples.iter().take(30) {
            predictor.observe(s.pos);
        }
        mar_motion::probability::gaussian_block_probabilities(&grid, &predictor.predict_horizon(4))
    };
    let frame_blocks = grid.blocks_overlapping(&mar_workload::frame_at(
        &paper_space(),
        &tour.samples[29].pos,
        0.1,
    ));
    group.bench_function("plan_only", |b| {
        let mut p = MotionAwarePrefetcher::new(4);
        b.iter(|| {
            let ctx = mar_buffer::PrefetchContext {
                grid: &grid,
                position: tour.samples[29].pos,
                frame_blocks: &frame_blocks,
                budget: 16,
                block_probs: &probs,
                direction_hint: None,
            };
            black_box(p.plan(&ctx))
        })
    });
    group.finish();
    let (a, b) = figs::fig10(&scale);
    print!("{}", a.render());
    print!("{}", b.render());
}

criterion_group!(benches, bench);
criterion_main!(benches);
