//! The chaos harness's contract, mirroring `tests/serve.rs`: `--jobs`
//! changes wall-clock time only, never a transcript byte — and the
//! resilience invariant holds across the smoke fault grid.

use mar_bench::chaos::{run_chaos, ChaosConfig};
use mar_bench::serve::fnv1a64;

#[test]
fn chaos_transcript_is_byte_identical_jobs_1_vs_4() {
    let serial = run_chaos(&ChaosConfig::smoke(1));
    let parallel = run_chaos(&ChaosConfig::smoke(4));
    assert_eq!(
        serial.transcript, parallel.transcript,
        "chaos transcript differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(fnv1a64(&serial.transcript), fnv1a64(&parallel.transcript));
    // Every aggregate and every per-session fingerprint must agree too.
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a, b, "grid-point report differs between jobs 1 and 4");
    }
}

#[test]
fn chaos_smoke_holds_the_invariant_at_every_grid_point() {
    let cfg = ChaosConfig::smoke(2);
    let r = run_chaos(&cfg);
    assert!(
        r.invariant_ok,
        "a faulted session's final resident set diverged from the fault-free run"
    );
    assert_eq!(r.sessions, cfg.sessions);
    assert_eq!(r.ticks, cfg.ticks);
    assert_eq!(r.points.len(), cfg.grid.len());
    assert_eq!(
        r.transcript.lines().count(),
        1 + cfg.grid.len() * cfg.sessions * (cfg.ticks + 1),
        "one row per (grid point, session, tick) plus finish rows and header"
    );
    // The faulted points actually exercised the protocol.
    let hostile = r.points.last().expect("smoke grid is non-empty");
    assert!(hostile.retries > 0, "20% loss must retry");
    assert!(hostile.drops > 0, "scheduled drops must fire");
    assert_eq!(hostile.drops, hostile.resumed, "all drops heal via resume");
    assert!(hostile.goodput() < 1.0, "faults must cost link time");
    // The clean reference is ideal.
    let clean = &r.points[0];
    assert_eq!(clean.retries + clean.drops, 0);
    assert!((clean.goodput() - 1.0).abs() < 1e-9);
}
