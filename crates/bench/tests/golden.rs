//! Golden-output regression test: regenerates one small figure table and
//! asserts the CSV is byte-identical to the committed fixture.
//!
//! The full reproduction (`results/*.csv`) is the real determinism
//! contract, but it takes too long for the test suite. This pins a scaled
//! down fig13a instead: any change that perturbs float operation order or
//! values anywhere along the pipeline (scene generation, prediction,
//! indexing, query counting) shows up here as a one-line diff.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! MAR_UPDATE_GOLDEN=1 cargo test -p mar-bench --test golden
//! ```
//!
//! then re-run without the variable and commit the updated fixture.

use mar_bench::{figs, Scale};

/// The reduced scale: same shape as `Scale::quick` but small enough that
/// the table builds in about a second even unoptimised.
fn small_scale() -> Scale {
    let mut s = Scale::quick();
    s.ticks = 60;
    s.speeds = vec![0.5];
    s.objects_default = 12;
    s.levels = 2;
    s
}

#[test]
fn fig13a_small_matches_golden_csv() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig13a_small.csv");
    let table = figs::fig13a(&small_scale());
    let csv = table.to_csv();

    if std::env::var_os("MAR_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &csv).expect("write golden fixture");
        eprintln!("updated {golden_path}");
        return;
    }

    let golden = std::fs::read_to_string(golden_path)
        .expect("missing golden fixture; run with MAR_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        csv, golden,
        "fig13a output drifted from the committed golden CSV; if the \
         change is intentional, regenerate with MAR_UPDATE_GOLDEN=1"
    );
}
