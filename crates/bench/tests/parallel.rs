//! The determinism contract of the parallel sweep engine: worker count
//! changes wall-clock time only, never a single output byte.

use mar_bench::engine::Engine;
use mar_bench::{ablations, figs, Scale, Table};
use mar_workload::Placement;
use std::sync::Arc;

/// A scale small enough to run every figure twice in a debug-mode test,
/// but with ≥2 speeds and ≥2 seeds so the sweeps genuinely fan out.
fn tiny() -> Scale {
    Scale {
        ticks: 40,
        speeds: vec![0.25, 1.0],
        objects_default: 12,
        bytes_per_object: 0.2 * 1024.0 * 1024.0,
        levels: 2,
        tour_seeds: vec![101, 202],
        scene_seed: 42,
    }
}

fn csv_of(tables: &[Table]) -> Vec<(String, String)> {
    tables
        .iter()
        .map(|t| (t.id.to_string(), t.to_csv()))
        .collect()
}

#[test]
fn figures_are_byte_identical_serial_vs_parallel() {
    let scale = tiny();
    let serial = csv_of(&figs::all_figures_with(&Engine::serial(), &scale));
    let parallel = csv_of(&figs::all_figures_with(&Engine::new(4), &scale));
    assert_eq!(serial.len(), parallel.len());
    for ((sid, scsv), (pid, pcsv)) in serial.iter().zip(&parallel) {
        assert_eq!(sid, pid, "table order must not depend on worker count");
        assert_eq!(
            scsv, pcsv,
            "{sid}: CSV differs between --jobs 1 and --jobs 4"
        );
    }
}

#[test]
fn ablations_are_byte_identical_serial_vs_parallel() {
    let scale = tiny();
    let serial = csv_of(&ablations::all_ablations_with(&Engine::serial(), &scale));
    let parallel = csv_of(&ablations::all_ablations_with(&Engine::new(4), &scale));
    assert_eq!(serial.len(), parallel.len());
    for ((sid, scsv), (pid, pcsv)) in serial.iter().zip(&parallel) {
        assert_eq!(sid, pid);
        assert_eq!(
            scsv, pcsv,
            "{sid}: CSV differs between --jobs 1 and --jobs 4"
        );
    }
}

#[test]
fn cached_scene_is_identical_to_fresh_generation() {
    let scale = tiny();
    let engine = Engine::new(2);
    let cached = engine.scene(&scale, scale.objects_default, Placement::Uniform);
    let fresh = figs::build_scene(&scale, scale.objects_default, Placement::Uniform);
    // Scene carries no interior mutability, so the Debug form is a full
    // structural fingerprint.
    assert_eq!(
        format!("{cached:?}"),
        format!("{fresh:?}"),
        "cache must hand out exactly what Scene::generate produces"
    );
    let again = engine.scene(&scale, scale.objects_default, Placement::Uniform);
    assert!(
        Arc::ptr_eq(&cached, &again),
        "repeat lookup must reuse the cached scene, not rebuild"
    );
    assert_eq!(engine.cache().len(), 1);
}

#[test]
fn engine_reuse_across_figures_shares_one_default_scene() {
    // fig8, fig9a, fig12 and fig13a all sweep the default uniform scene;
    // one engine must build it exactly once.
    let scale = tiny();
    let engine = Engine::new(2);
    let _ = figs::fig8_with(&engine, &scale);
    let _ = figs::fig9a_with(&engine, &scale);
    let _ = figs::fig12_with(&engine, &scale);
    let _ = figs::fig13a_with(&engine, &scale);
    assert_eq!(
        engine.cache().len(),
        1,
        "shared default scene must be generated once"
    );
}
