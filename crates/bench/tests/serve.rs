//! The determinism contract of the serving harness, mirroring
//! `tests/parallel.rs`: `--jobs` changes wall-clock time only, never a
//! single transcript byte — and neither does moving the index out of
//! core: the page-file backend's transcript is pinned to the same
//! fingerprint as the in-RAM one.

use mar_bench::serve::{fnv1a64, run_serve, run_serve_backend, ServeBackend, ServeConfig};
use mar_core::CachePolicy;

#[test]
fn serve_transcript_is_byte_identical_jobs_1_vs_4() {
    let serial = run_serve(&ServeConfig::smoke(1));
    let parallel = run_serve(&ServeConfig::smoke(4));
    assert_eq!(
        serial.transcript, parallel.transcript,
        "serve transcript differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(fnv1a64(&serial.transcript), fnv1a64(&parallel.transcript));
    // Every aggregate derived from the transcript must agree too.
    assert_eq!(serial.queries, parallel.queries);
    assert_eq!(serial.bytes, parallel.bytes);
    assert_eq!(serial.coeffs, parallel.coeffs);
    assert_eq!(serial.io, parallel.io);
}

#[test]
fn serve_smoke_shape_matches_config() {
    let cfg = ServeConfig::smoke(2);
    let r = run_serve(&cfg);
    assert_eq!(r.sessions, cfg.sessions);
    assert_eq!(r.ticks, cfg.ticks);
    assert_eq!(r.queries, (cfg.sessions * cfg.ticks) as u64);
    assert_eq!(r.tick_ns.len(), cfg.ticks);
    assert_eq!(
        r.transcript.lines().count(),
        1 + cfg.sessions * cfg.ticks,
        "one transcript row per (tick, session) plus the header"
    );
    assert!(r.bytes > 0.0, "smoke workload must serve data");
    // Wall-clock quantiles are monotone even though their values vary.
    assert!(r.tick_latency_ns(0.50) <= r.tick_latency_ns(0.99));
    assert!(r.tick_latency_ns(0.99) <= r.tick_latency_ns(1.0));
}

/// The smoke transcript's FNV-1a fingerprint, pinned so that any byte of
/// drift — in the scene, the planner, the index, or the out-of-core read
/// path — fails loudly rather than silently shifting every benchmark.
const SMOKE_TRANSCRIPT_FNV64: u64 = 0x5053_d3c4_84e6_7f80;

#[test]
fn paged_serve_transcript_is_byte_identical_to_ram() {
    let cfg = ServeConfig::smoke(2);
    let ram = run_serve(&cfg);
    assert_eq!(
        fnv1a64(&ram.transcript),
        SMOKE_TRANSCRIPT_FNV64,
        "the smoke transcript fingerprint moved — if intentional, repin"
    );
    assert!(ram.store_file_bytes.is_none() && ram.cache.is_none());
    // A deliberately starved single-page pool: the store must dwarf it so
    // the replay genuinely pages, yet the answers may not change by a
    // single byte.
    let budget_bytes = 4096;
    let dir = std::env::temp_dir().join("mar-bench-serve-tests");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    for policy in [CachePolicy::Lru, CachePolicy::MotionAware] {
        let path = dir.join(format!("{}-{}.pages", std::process::id(), policy.name()));
        let paged = run_serve_backend(
            &cfg,
            &ServeBackend::Paged {
                path: path.clone(),
                budget_bytes,
                policy,
            },
        );
        assert_eq!(
            paged.transcript,
            ram.transcript,
            "paged transcript differs from RAM under {}",
            policy.name()
        );
        assert_eq!(fnv1a64(&paged.transcript), SMOKE_TRANSCRIPT_FNV64);
        assert_eq!(paged.bytes, ram.bytes);
        assert_eq!(paged.coeffs, ram.coeffs);
        assert_eq!(paged.io, ram.io);
        assert_eq!(paged.unique_io, ram.unique_io);
        let file_bytes = paged
            .store_file_bytes
            .expect("paged run records its store size");
        assert!(
            file_bytes >= 50 * budget_bytes as u64,
            "store must dwarf the pool: {file_bytes} B vs budget {budget_bytes} B"
        );
        let stats = paged.cache.expect("paged run records pool stats");
        assert!(stats.faults > 0, "a starved pool must fault");
        assert!(stats.hits > 0, "even a starved pool re-hits the root");
        let _ = std::fs::remove_file(&path);
    }
}
