//! The determinism contract of the serving harness, mirroring
//! `tests/parallel.rs`: `--jobs` changes wall-clock time only, never a
//! single transcript byte.

use mar_bench::serve::{fnv1a64, run_serve, ServeConfig};

#[test]
fn serve_transcript_is_byte_identical_jobs_1_vs_4() {
    let serial = run_serve(&ServeConfig::smoke(1));
    let parallel = run_serve(&ServeConfig::smoke(4));
    assert_eq!(
        serial.transcript, parallel.transcript,
        "serve transcript differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(fnv1a64(&serial.transcript), fnv1a64(&parallel.transcript));
    // Every aggregate derived from the transcript must agree too.
    assert_eq!(serial.queries, parallel.queries);
    assert_eq!(serial.bytes, parallel.bytes);
    assert_eq!(serial.coeffs, parallel.coeffs);
    assert_eq!(serial.io, parallel.io);
}

#[test]
fn serve_smoke_shape_matches_config() {
    let cfg = ServeConfig::smoke(2);
    let r = run_serve(&cfg);
    assert_eq!(r.sessions, cfg.sessions);
    assert_eq!(r.ticks, cfg.ticks);
    assert_eq!(r.queries, (cfg.sessions * cfg.ticks) as u64);
    assert_eq!(r.tick_ns.len(), cfg.ticks);
    assert_eq!(
        r.transcript.lines().count(),
        1 + cfg.sessions * cfg.ticks,
        "one transcript row per (tick, session) plus the header"
    );
    assert!(r.bytes > 0.0, "smoke workload must serve data");
    // Wall-clock quantiles are monotone even though their values vary.
    assert!(r.tick_latency_ns(0.50) <= r.tick_latency_ns(0.99));
    assert!(r.tick_latency_ns(0.99) <= r.tick_latency_ns(1.0));
}
