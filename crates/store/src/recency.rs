//! The one deterministic recency structure shared by every cache in the
//! workspace.
//!
//! A [`RecencyIndex`] is a monotone logical clock plus a `BTreeMap` from
//! *unique* recency stamps to keys. Because every stamp is handed out
//! exactly once, "least recently used" is a total order and a pure
//! function of the operation sequence — no wall clocks, no hashing, no
//! ties. `mar_buffer::LruCache`, `mar_buffer::BlockCache`, and
//! [`crate::PageCache`] all keep their stamp→key side index here instead
//! of hand-rolling three copies.

use std::collections::BTreeMap;

/// Deterministic stamp→key recency index with a monotone logical clock.
///
/// The index only tracks recency; callers own the key→value map and the
/// key→stamp back-pointers. The invariant callers must keep is that each
/// live key appears under exactly one stamp (remove the old stamp before
/// inserting a refreshed one — or use [`RecencyIndex::touch`]).
#[derive(Debug, Clone, Default)]
pub struct RecencyIndex<K> {
    clock: u64,
    stamps: BTreeMap<u64, K>,
}

impl<K: Ord + Clone> RecencyIndex<K> {
    /// Creates an empty index with the clock at zero.
    pub fn new() -> Self {
        Self {
            clock: 0,
            stamps: BTreeMap::new(),
        }
    }

    /// Advances the logical clock and returns the fresh (unique) stamp.
    pub fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Current clock value (the most recently issued stamp).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Records `key` under `stamp`. The stamp must come from [`tick`]
    /// (uniqueness is the caller's side of the invariant).
    ///
    /// [`tick`]: RecencyIndex::tick
    pub fn insert(&mut self, stamp: u64, key: K) {
        self.stamps.insert(stamp, key);
    }

    /// Drops the entry recorded under `stamp`, if any.
    pub fn remove(&mut self, stamp: u64) -> Option<K> {
        self.stamps.remove(&stamp)
    }

    /// Refreshes `key` from `old_stamp` to a fresh stamp, returning it.
    pub fn touch(&mut self, old_stamp: u64, key: K) -> u64 {
        self.stamps.remove(&old_stamp);
        let stamp = self.tick();
        self.stamps.insert(stamp, key.clone());
        stamp
    }

    /// Removes and returns the least recently stamped entry.
    pub fn pop_lru(&mut self) -> Option<(u64, K)> {
        self.stamps.pop_first()
    }

    /// The least recently stamped entry, without removing it.
    pub fn peek_lru(&self) -> Option<(u64, &K)> {
        self.stamps.first_key_value().map(|(s, k)| (*s, k))
    }

    /// Tracked entries.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Keeps only entries whose key satisfies `pred`. The clock is left
    /// untouched so surviving stamps keep their relative order.
    pub fn retain(&mut self, mut pred: impl FnMut(&K) -> bool) {
        self.stamps.retain(|_, k| pred(k));
    }

    /// Iterates entries in stamp (least→most recent) order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &K)> {
        self.stamps.iter().map(|(s, k)| (*s, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_follows_stamps() {
        let mut r: RecencyIndex<u32> = RecencyIndex::new();
        for key in [10u32, 20, 30] {
            let s = r.tick();
            r.insert(s, key);
        }
        assert_eq!(r.pop_lru(), Some((1, 10)));
        assert_eq!(r.pop_lru(), Some((2, 20)));
        assert_eq!(r.peek_lru(), Some((3, &30)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn touch_moves_to_back() {
        let mut r: RecencyIndex<u32> = RecencyIndex::new();
        let s1 = r.tick();
        r.insert(s1, 10);
        let s2 = r.tick();
        r.insert(s2, 20);
        let s1b = r.touch(s1, 10);
        assert!(s1b > s2);
        assert_eq!(r.pop_lru(), Some((s2, 20)));
        assert_eq!(r.pop_lru(), Some((s1b, 10)));
    }

    #[test]
    fn retain_preserves_relative_order() {
        let mut r: RecencyIndex<u32> = RecencyIndex::new();
        for key in [1u32, 2, 3, 4] {
            let s = r.tick();
            r.insert(s, key);
        }
        r.retain(|k| k % 2 == 0);
        let keys: Vec<u32> = r.iter().map(|(_, k)| *k).collect();
        assert_eq!(keys, vec![2, 4]);
        assert_eq!(r.clock(), 4, "clock untouched by retain");
    }
}
