//! # mar-store — file-backed page store and unified page cache
//!
//! The paper's §VI "node access" counter models disk pages; this crate
//! makes them real. It provides the out-of-core substrate the server's
//! wavelet index and coefficient blocks are paged through:
//!
//! * [`PageFile`] — a fixed-size page file (4 KB pages, `u32` page ids,
//!   deterministic little-endian layout). The file header and every page
//!   carry an FNV-1a checksum, so torn writes and bit rot surface as a
//!   typed [`StoreError`] instead of silently corrupt query answers.
//! * [`RecencyIndex`] — the one deterministic recency structure shared by
//!   every cache in the workspace (`mar_buffer::LruCache`,
//!   `mar_buffer::BlockCache`, and [`PageCache`]): a monotone logical
//!   clock plus a `BTreeMap` from unique recency stamps to keys, so
//!   "least recently used" is a total order and a pure function of the
//!   operation sequence.
//! * [`PageCache`] — the server-side buffer pool: a hard byte budget over
//!   [`PageFile`] reads with two eviction policies — plain
//!   [`CachePolicy::Lru`], and [`CachePolicy::MotionAware`], which ranks
//!   pages by an externally supplied *heat* (the Eq. 2 k-direction
//!   allocation aggregated over connected sessions, see
//!   `mar_buffer::MotionHeat`) and admits/evicts coldest-first.
//!
//! Everything is deterministic: `BTreeMap` only, `total_cmp` for float
//! ordering, no wall clocks, no hashing — two runs replaying the same
//! read sequence produce identical hit/miss/eviction traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod page;
mod recency;

pub use cache::{CachePolicy, PageCache, PageCacheStats, TraceEvent};
pub use page::{fnv1a64_bytes, PageFile, StoreError, PAGE_PAYLOAD, PAGE_SIZE};
pub use recency::RecencyIndex;
