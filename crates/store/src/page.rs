//! The fixed-size page file: deterministic little-endian layout with a
//! checksummed header and per-page trailer checksums.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0                : header block (PAGE_SIZE bytes)
//!   [0..8)   magic  "MARSTOR1"
//!   [8..12)  format version (u32, currently 1)
//!   [12..16) page size (u32, PAGE_SIZE)
//!   [16..20) page count (u32)
//!   [20..28) FNV-1a 64 checksum of bytes [0..20)
//!   rest zero
//! offset PAGE_SIZE*(1+id) : page `id`
//!   [0..PAGE_PAYLOAD)          payload
//!   [PAGE_PAYLOAD..PAGE_SIZE)  FNV-1a 64 checksum of the payload
//! ```
//!
//! Pages are written once at build time and read-only afterwards; there
//! is no free list or in-place update path, which keeps the format (and
//! its failure modes) trivial.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Size of one page on disk, matching the paper's §VII-D page geometry
/// (4 KB pages, node capacity 20).
pub const PAGE_SIZE: usize = 4096;

/// Usable payload bytes per page (the trailing 8 bytes hold the page
/// checksum).
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - 8;

const MAGIC: &[u8; 8] = b"MARSTOR1";
const VERSION: u32 = 1;

/// FNV-1a 64-bit over a byte slice — the same hash discipline the serve
/// transcript fingerprints use, applied to page payloads.
pub fn fnv1a64_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Typed failure of the page store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `MARSTOR1` magic.
    BadMagic,
    /// The file's format version is not one this build reads.
    BadVersion(u32),
    /// The header's recorded page size differs from [`PAGE_SIZE`].
    BadPageSize(u32),
    /// The header checksum does not match its contents.
    BadHeaderChecksum,
    /// The file is shorter than its header claims.
    ShortFile {
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// A page's trailer checksum does not match its payload.
    BadPageChecksum(u32),
    /// A read named a page id at or past the page count.
    PageOutOfBounds {
        /// The requested page.
        page: u32,
        /// Pages in the file.
        count: u32,
    },
    /// A build handed the writer more payload than one page holds, or
    /// more pages than `u32` ids can address.
    Oversize,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "page store I/O error: {e}"),
            Self::BadMagic => write!(f, "not a mar-store page file (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported page-file version {v}"),
            Self::BadPageSize(s) => write!(f, "page size {s} != {PAGE_SIZE}"),
            Self::BadHeaderChecksum => write!(f, "page-file header checksum mismatch"),
            Self::ShortFile { expected, found } => {
                write!(
                    f,
                    "page file truncated: {found} bytes < expected {expected}"
                )
            }
            Self::BadPageChecksum(p) => write!(f, "checksum mismatch on page {p}"),
            Self::PageOutOfBounds { page, count } => {
                write!(f, "page {page} out of bounds (file holds {count})")
            }
            Self::Oversize => write!(f, "page payload or page count exceeds the format limits"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A read handle on a page file. Reads verify the per-page checksum, so
/// every byte handed upward is the byte that was written.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    page_count: u32,
}

impl PageFile {
    /// Writes a new page file at `path` from in-memory page payloads.
    /// Each payload may be up to [`PAGE_PAYLOAD`] bytes; shorter payloads
    /// are zero-padded. Overwrites any existing file at `path`.
    pub fn create(path: &Path, pages: &[Vec<u8>]) -> Result<(), StoreError> {
        if pages.len() > u32::MAX as usize || pages.iter().any(|p| p.len() > PAGE_PAYLOAD) {
            return Err(StoreError::Oversize);
        }
        let mut header = [0u8; PAGE_SIZE];
        header[..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        header[16..20].copy_from_slice(&(pages.len() as u32).to_le_bytes());
        let sum = fnv1a64_bytes(&header[..20]);
        header[20..28].copy_from_slice(&sum.to_le_bytes());
        let mut file = File::create(path)?;
        file.write_all(&header)?;
        let mut block = [0u8; PAGE_SIZE];
        for payload in pages {
            block[..PAGE_PAYLOAD].fill(0);
            block[..payload.len()].copy_from_slice(payload);
            let sum = fnv1a64_bytes(&block[..PAGE_PAYLOAD]);
            block[PAGE_PAYLOAD..].copy_from_slice(&sum.to_le_bytes());
            file.write_all(&block)?;
        }
        file.sync_all()?;
        Ok(())
    }

    /// Opens an existing page file, validating its header.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let mut header = [0u8; PAGE_SIZE];
        file.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::ShortFile {
                    expected: PAGE_SIZE as u64,
                    found: 0,
                }
            } else {
                StoreError::Io(e)
            }
        })?;
        if &header[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let page_size = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        if page_size as usize != PAGE_SIZE {
            return Err(StoreError::BadPageSize(page_size));
        }
        let page_count = u32::from_le_bytes([header[16], header[17], header[18], header[19]]);
        let sum = u64::from_le_bytes(
            header[20..28]
                .try_into()
                .map_err(|_| StoreError::BadHeaderChecksum)?,
        );
        if sum != fnv1a64_bytes(&header[..20]) {
            return Err(StoreError::BadHeaderChecksum);
        }
        let expected = (PAGE_SIZE as u64) * (1 + page_count as u64);
        let found = file.metadata()?.len();
        if found < expected {
            return Err(StoreError::ShortFile { expected, found });
        }
        Ok(Self { file, page_count })
    }

    /// Pages stored in the file.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Reads page `id`'s payload into `buf`, verifying its checksum.
    pub fn read_page(&mut self, id: u32, buf: &mut [u8; PAGE_PAYLOAD]) -> Result<(), StoreError> {
        if id >= self.page_count {
            return Err(StoreError::PageOutOfBounds {
                page: id,
                count: self.page_count,
            });
        }
        let offset = (PAGE_SIZE as u64) * (1 + id as u64);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)?;
        let mut trailer = [0u8; 8];
        self.file.read_exact(&mut trailer)?;
        if u64::from_le_bytes(trailer) != fnv1a64_bytes(buf) {
            return Err(StoreError::BadPageChecksum(id));
        }
        Ok(())
    }

    /// Reads page `id` into a fresh heap buffer.
    pub fn read_page_vec(&mut self, id: u32) -> Result<Vec<u8>, StoreError> {
        let mut buf = [0u8; PAGE_PAYLOAD];
        self.read_page(id, &mut buf)?;
        Ok(buf.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mar-store-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join(name)
    }

    fn page(fill: u8, len: usize) -> Vec<u8> {
        vec![fill; len]
    }

    #[test]
    fn round_trip_preserves_bytes() {
        let path = tmp("round_trip.pages");
        let pages = vec![page(1, 100), page(2, PAGE_PAYLOAD), page(3, 0)];
        PageFile::create(&path, &pages).expect("create");
        let mut f = PageFile::open(&path).expect("open");
        assert_eq!(f.page_count(), 3);
        for (i, p) in pages.iter().enumerate() {
            let got = f.read_page_vec(i as u32).expect("read");
            assert_eq!(&got[..p.len()], p.as_slice(), "page {i} payload");
            assert!(got[p.len()..].iter().all(|&b| b == 0), "page {i} padding");
        }
    }

    #[test]
    fn out_of_bounds_is_typed() {
        let path = tmp("oob.pages");
        PageFile::create(&path, &[page(9, 8)]).expect("create");
        let mut f = PageFile::open(&path).expect("open");
        assert!(matches!(
            f.read_page_vec(1),
            Err(StoreError::PageOutOfBounds { page: 1, count: 1 })
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt.pages");
        PageFile::create(&path, &[page(7, 64), page(8, 64)]).expect("create");
        // Flip one payload byte of page 1.
        let mut bytes = std::fs::read(&path).expect("read file");
        let off = PAGE_SIZE * 2 + 10;
        bytes[off] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite");
        let mut f = PageFile::open(&path).expect("open");
        assert!(f.read_page_vec(0).is_ok(), "untouched page still reads");
        assert!(matches!(
            f.read_page_vec(1),
            Err(StoreError::BadPageChecksum(1))
        ));
    }

    #[test]
    fn header_corruption_fails_open() {
        let path = tmp("badheader.pages");
        PageFile::create(&path, &[page(1, 4)]).expect("create");
        let mut bytes = std::fs::read(&path).expect("read file");
        bytes[17] ^= 0x01; // page count byte
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(
            PageFile::open(&path),
            Err(StoreError::BadHeaderChecksum)
        ));
    }

    #[test]
    fn truncation_fails_open() {
        let path = tmp("short.pages");
        PageFile::create(&path, &[page(1, 4), page(2, 4)]).expect("create");
        let bytes = std::fs::read(&path).expect("read file");
        std::fs::write(&path, &bytes[..bytes.len() - 100]).expect("truncate");
        assert!(matches!(
            PageFile::open(&path),
            Err(StoreError::ShortFile { .. })
        ));
    }

    #[test]
    fn not_a_store_fails_open() {
        let path = tmp("notastore.pages");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).expect("write");
        assert!(matches!(PageFile::open(&path), Err(StoreError::BadMagic)));
    }

    #[test]
    fn oversize_payload_is_rejected() {
        let path = tmp("oversize.pages");
        assert!(matches!(
            PageFile::create(&path, &[vec![0u8; PAGE_PAYLOAD + 1]]),
            Err(StoreError::Oversize)
        ));
    }
}
