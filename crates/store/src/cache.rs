//! The server-side buffer pool: a hard byte budget over [`PageFile`]
//! reads with deterministic, policy-switchable eviction.
//!
//! Two policies share one mechanism:
//!
//! * [`CachePolicy::Lru`] — classic least-recently-used, the ablation
//!   baseline. Victim = the entry with the lowest recency stamp.
//! * [`CachePolicy::MotionAware`] — the Eq. 2 promotion: an externally
//!   supplied *heat* function ranks pages by how much of the k-direction
//!   allocation (aggregated over connected sessions) falls on them.
//!   Eviction is **recency-protected**: the most recently used three
//!   quarters of the pool are exempt (demand reuse is recency-shaped —
//!   consecutive overlapping query windows re-descend the same node
//!   pages within a few ticks), and heat ranks only the oldest quarter,
//!   so the direction signal chooses among pages no session has touched
//!   lately.
//!   Victim = the coldest unprotected entry (ties broken by lowest
//!   stamp), and a faulted page colder than the would-be victim is
//!   served but **not** admitted — scan resistance, so a one-off sweep
//!   cannot flush the pages the sessions' predicted motion is about to
//!   need.
//!
//! With a uniform heat function the motion-aware policy degenerates to
//! exactly LRU (the LRU victim is always in the unprotected least-recent
//! quarter; equal heat → stamp tie-break picks it, and the bypass test
//! `heat(new) < heat(victim)` never fires), which is what makes the
//! ablation a controlled comparison.
//!
//! Determinism: entries live in a `BTreeMap` keyed by page id, victim
//! scans iterate in key order, floats compare via `total_cmp`, and the
//! recency side index is a [`RecencyIndex`] — identical read sequences
//! yield identical hit/fault/evict/bypass traces on every run.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::page::{PageFile, StoreError, PAGE_SIZE};
use crate::recency::RecencyIndex;

/// Eviction/admission policy for a [`PageCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Plain least-recently-used (ablation baseline).
    Lru,
    /// Heat-ranked admission and eviction (Eq. 2 k-direction promotion).
    MotionAware,
}

impl CachePolicy {
    /// Stable lowercase name, used in bench JSON and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Self::Lru => "lru",
            Self::MotionAware => "motion",
        }
    }
}

/// Counters a [`PageCache`] keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Total page requests.
    pub lookups: u64,
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that went to the page file (physical reads).
    pub faults: u64,
    /// Resident pages dropped to make room.
    pub evictions: u64,
    /// Faulted pages served but not admitted (motion-aware only).
    pub bypasses: u64,
}

impl PageCacheStats {
    /// Hits over lookups; `1.0` when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// One cache decision, recorded when tracing is on. The proptest model
/// test replays traces across runs to pin eviction-order determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Page served from the pool.
    Hit(u32),
    /// Page read from the file and admitted.
    Fault(u32),
    /// Page dropped to make room.
    Evict(u32),
    /// Page read from the file but not admitted (colder than victim).
    Bypass(u32),
}

#[derive(Debug, Clone)]
struct Resident {
    stamp: u64,
    data: Arc<Vec<u8>>,
}

/// Deterministic bounded buffer pool over a [`PageFile`].
#[derive(Debug)]
pub struct PageCache {
    file: PageFile,
    policy: CachePolicy,
    capacity_pages: usize,
    entries: BTreeMap<u32, Resident>,
    recency: RecencyIndex<u32>,
    stats: PageCacheStats,
    trace: Option<Vec<TraceEvent>>,
}

impl PageCache {
    /// Wraps `file` in a pool holding at most `budget_bytes` of page
    /// data (at least one page, so progress is always possible).
    pub fn new(file: PageFile, budget_bytes: usize, policy: CachePolicy) -> Self {
        let capacity_pages = (budget_bytes / PAGE_SIZE).max(1);
        Self {
            file,
            policy,
            capacity_pages,
            entries: BTreeMap::new(),
            recency: RecencyIndex::new(),
            stats: PageCacheStats::default(),
            trace: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Hard capacity in pages implied by the byte budget.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Pages in the underlying file.
    pub fn file_page_count(&self) -> u32 {
        self.file.page_count()
    }

    /// Current counters.
    pub fn stats(&self) -> PageCacheStats {
        self.stats
    }

    /// Zeroes the counters (resident set and recency are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = PageCacheStats::default();
    }

    /// Turns decision tracing on (`take_trace` collects the log).
    pub fn set_trace(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the recorded decisions; empty when tracing is off.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match self.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// True when `page` is resident (no stats or recency side effects).
    pub fn contains(&self, page: u32) -> bool {
        self.entries.contains_key(&page)
    }

    fn record(&mut self, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.push(ev);
        }
    }

    /// Reads `page` under a uniform heat function (policy degenerates to
    /// LRU). Returns the payload and whether it was a pool hit.
    pub fn read(&mut self, page: u32) -> Result<(Arc<Vec<u8>>, bool), StoreError> {
        self.read_with_heat(page, &|_| 0.0)
    }

    /// Reads `page`, ranking admission/eviction by `heat` (higher =
    /// hotter = more worth keeping). Returns the payload and whether it
    /// was a pool hit.
    pub fn read_with_heat(
        &mut self,
        page: u32,
        heat: &dyn Fn(u32) -> f64,
    ) -> Result<(Arc<Vec<u8>>, bool), StoreError> {
        self.stats.lookups += 1;
        if let Some(res) = self.entries.get_mut(&page) {
            let data = Arc::clone(&res.data);
            res.stamp = self.recency.touch(res.stamp, page);
            self.stats.hits += 1;
            self.record(TraceEvent::Hit(page));
            return Ok((data, true));
        }

        let data = Arc::new(self.file.read_page_vec(page)?);
        self.stats.faults += 1;

        if self.entries.len() >= self.capacity_pages {
            let victim = match self.policy {
                CachePolicy::Lru => self.recency.peek_lru().map(|(_, &p)| p),
                CachePolicy::MotionAware => {
                    // Recency-protected heat ranking: exempt the most
                    // recently used three quarters of the pool and pick
                    // the coldest of the rest. Candidates stream out of
                    // the recency index least-recent first, so the strict
                    // `<` keeps the lowest-stamped of equally cold pages —
                    // with a uniform heat that is exactly the LRU victim.
                    let protected = self.capacity_pages - self.capacity_pages / 4;
                    let candidates = self.entries.len().saturating_sub(protected).max(1);
                    let mut coldest: Option<(f64, u32)> = None;
                    for (_, &p) in self.recency.iter().take(candidates) {
                        let h = heat(p);
                        if coldest.is_none_or(|(ch, _)| h < ch) {
                            coldest = Some((h, p));
                        }
                    }
                    coldest.map(|(_, p)| p)
                }
            };
            // `victim` is always present here (capacity ≥ 1 and the cache
            // is full); written as `if let` to keep the path panic-free.
            if let Some(victim) = victim {
                if self.policy == CachePolicy::MotionAware && heat(page) < heat(victim) {
                    // Admission bypass: the faulted page is colder than
                    // everything resident — serve it without caching it.
                    self.stats.bypasses += 1;
                    self.record(TraceEvent::Bypass(page));
                    return Ok((data, false));
                }
                if let Some(res) = self.entries.remove(&victim) {
                    self.recency.remove(res.stamp);
                }
                self.stats.evictions += 1;
                self.record(TraceEvent::Evict(victim));
            }
        }

        let stamp = self.recency.tick();
        self.recency.insert(stamp, page);
        self.entries.insert(
            page,
            Resident {
                stamp,
                data: Arc::clone(&data),
            },
        );
        self.record(TraceEvent::Fault(page));
        Ok((data, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_PAYLOAD;
    use std::path::PathBuf;

    fn store(name: &str, pages: usize) -> PageFile {
        let dir = std::env::temp_dir().join("mar-store-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        let path: PathBuf = dir.join(name);
        let payloads: Vec<Vec<u8>> = (0..pages).map(|i| vec![i as u8; 32]).collect();
        PageFile::create(&path, &payloads).expect("create");
        PageFile::open(&path).expect("open")
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = PageCache::new(store("lru.pages", 4), 2 * PAGE_SIZE, CachePolicy::Lru);
        c.set_trace(true);
        c.read(0).unwrap();
        c.read(1).unwrap();
        c.read(0).unwrap(); // refresh 0 → victim is 1
        c.read(2).unwrap();
        assert!(c.contains(0) && c.contains(2) && !c.contains(1));
        assert_eq!(
            c.take_trace(),
            vec![
                TraceEvent::Fault(0),
                TraceEvent::Fault(1),
                TraceEvent::Hit(0),
                TraceEvent::Evict(1),
                TraceEvent::Fault(2),
            ]
        );
    }

    #[test]
    fn uniform_heat_degenerates_to_lru() {
        let reads = [0u32, 1, 0, 2, 3, 1, 0, 3, 2, 1];
        let mut lru = PageCache::new(store("deg-l.pages", 4), 2 * PAGE_SIZE, CachePolicy::Lru);
        let mut mot = PageCache::new(
            store("deg-m.pages", 4),
            2 * PAGE_SIZE,
            CachePolicy::MotionAware,
        );
        lru.set_trace(true);
        mot.set_trace(true);
        for &p in &reads {
            lru.read(p).unwrap();
            mot.read(p).unwrap();
        }
        assert_eq!(lru.take_trace(), mot.take_trace());
        assert_eq!(lru.stats(), mot.stats());
    }

    #[test]
    fn motion_aware_bypasses_cold_pages() {
        let mut c = PageCache::new(
            store("bypass.pages", 4),
            2 * PAGE_SIZE,
            CachePolicy::MotionAware,
        );
        // Pages 0 and 1 are hot; 2 and 3 are a cold scan.
        let heat = |p: u32| if p < 2 { 10.0 } else { 0.0 };
        c.set_trace(true);
        c.read_with_heat(0, &heat).unwrap();
        c.read_with_heat(1, &heat).unwrap();
        c.read_with_heat(2, &heat).unwrap(); // cold → bypass
        c.read_with_heat(3, &heat).unwrap(); // cold → bypass
        let (_, hit) = c.read_with_heat(0, &heat).unwrap();
        assert!(hit, "hot page survived the scan");
        assert_eq!(
            c.take_trace(),
            vec![
                TraceEvent::Fault(0),
                TraceEvent::Fault(1),
                TraceEvent::Bypass(2),
                TraceEvent::Bypass(3),
                TraceEvent::Hit(0),
            ]
        );
        let s = c.stats();
        assert_eq!((s.bypasses, s.evictions), (2, 0));
    }

    #[test]
    fn bytes_match_raw_file_under_pressure() {
        let mut raw = store("bytes-raw.pages", 8);
        let mut c = PageCache::new(store("bytes-c.pages", 8), PAGE_SIZE, CachePolicy::Lru);
        for &p in &[0u32, 5, 2, 5, 0, 7, 1, 1, 3, 6, 4, 0] {
            let (got, _) = c.read(p).unwrap();
            let mut want = [0u8; PAGE_PAYLOAD];
            raw.read_page(p, &mut want).unwrap();
            assert_eq!(got.as_slice(), &want[..], "page {p}");
        }
    }

    #[test]
    fn budget_floor_is_one_page() {
        let c = PageCache::new(store("floor.pages", 1), 0, CachePolicy::Lru);
        assert_eq!(c.capacity_pages(), 1);
    }
}
