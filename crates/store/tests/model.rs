//! Proptest model test for `PageCache`: both policies are pinned against
//! a tiny reference model. Every read must return the same bytes as the
//! raw page file, the hit/fault/evict/bypass trace must equal the
//! model's decision sequence, and identical read sequences on fresh
//! caches must produce identical traces (determinism across runs and
//! `--jobs` counts — each case owns its own files, so test parallelism
//! cannot perturb the decisions).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mar_store::{CachePolicy, PageCache, PageFile, TraceEvent, PAGE_SIZE};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

/// Builds a fresh page file for one case and returns its path. Names are
/// unique per process + case so parallel test binaries never collide.
fn build_store(n_pages: usize) -> PathBuf {
    let dir = std::env::temp_dir().join("mar-store-model");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("model-{}-{id}.pages", std::process::id()));
    let payloads: Vec<Vec<u8>> = (0..n_pages)
        .map(|i| {
            let mut p = vec![(i % 251) as u8; 48];
            p[0] = (i >> 8) as u8;
            p[1] = i as u8;
            p
        })
        .collect();
    PageFile::create(&path, &payloads).expect("create page file");
    path
}

/// Reference model: a cache is a set of (page, stamp) pairs plus a
/// clock. LRU victimizes the lowest stamp; motion-aware protects the
/// most recently used three quarters of the pool, victimizes the
/// coldest of the rest (stamp tie-break), and refuses admission of
/// pages colder than the victim.
struct Model {
    policy: CachePolicy,
    cap: usize,
    clock: u64,
    resident: Vec<(u32, u64)>,
}

impl Model {
    fn new(policy: CachePolicy, cap: usize) -> Self {
        Self {
            policy,
            cap,
            clock: 0,
            resident: Vec::new(),
        }
    }

    fn read(&mut self, page: u32, heat: &dyn Fn(u32) -> f64) -> Vec<TraceEvent> {
        self.clock += 1;
        if let Some(slot) = self.resident.iter_mut().find(|(p, _)| *p == page) {
            slot.1 = self.clock;
            return vec![TraceEvent::Hit(page)];
        }
        let mut events = Vec::new();
        if self.resident.len() >= self.cap {
            let mut by_stamp: Vec<(u32, u64)> = self.resident.clone();
            by_stamp.sort_by_key(|&(_, s)| s);
            let candidates = match self.policy {
                CachePolicy::Lru => 1,
                CachePolicy::MotionAware => {
                    let protected = self.cap - self.cap / 4;
                    by_stamp.len().saturating_sub(protected).max(1)
                }
            };
            let (victim, _) = *by_stamp[..candidates]
                .iter()
                .min_by(|(pa, sa), (pb, sb)| match self.policy {
                    CachePolicy::Lru => sa.cmp(sb),
                    CachePolicy::MotionAware => heat(*pa).total_cmp(&heat(*pb)).then(sa.cmp(sb)),
                })
                .expect("resident set at capacity");
            if self.policy == CachePolicy::MotionAware && heat(page) < heat(victim) {
                return vec![TraceEvent::Bypass(page)];
            }
            self.resident.retain(|(p, _)| *p != victim);
            events.push(TraceEvent::Evict(victim));
        }
        self.resident.push((page, self.clock));
        events.push(TraceEvent::Fault(page));
        events
    }
}

/// Runs `reads` through a fresh cache over `path`, checking bytes
/// against a raw `PageFile` and the trace against the model. Returns the
/// trace for cross-run comparison.
fn run_and_check(
    path: &Path,
    policy: CachePolicy,
    cap: usize,
    reads: &[u32],
    heats: &[f64],
) -> Result<Vec<TraceEvent>, TestCaseError> {
    let heat = |p: u32| heats[p as usize];
    let file = PageFile::open(path).expect("open for cache");
    let mut raw = PageFile::open(path).expect("open raw");
    let mut cache = PageCache::new(file, cap * PAGE_SIZE, policy);
    cache.set_trace(true);
    let mut model = Model::new(policy, cache.capacity_pages());
    let mut trace = Vec::new();
    for &p in reads {
        let (got, hit) = cache.read_with_heat(p, &heat).expect("cache read");
        let want = raw.read_page_vec(p).expect("raw read");
        prop_assert_eq!(got.as_slice(), want.as_slice(), "bytes of page {}", p);
        let expected = model.read(p, &heat);
        let actual = cache.take_trace();
        prop_assert_eq!(&actual, &expected, "decision on page {}", p);
        prop_assert_eq!(hit, matches!(expected[0], TraceEvent::Hit(_)));
        trace.extend(actual);
    }
    let s = cache.stats();
    prop_assert_eq!(s.lookups, reads.len() as u64);
    prop_assert_eq!(s.hits + s.faults, s.lookups);
    Ok(trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_matches_model_and_is_deterministic(
        n_pages in 2usize..20,
        cap in 1usize..6,
        raw_reads in prop::collection::vec(0u32..64, 1..120),
        raw_heats in prop::collection::vec(0u32..4, 20..21),
    ) {
        let reads: Vec<u32> = raw_reads.iter().map(|r| r % n_pages as u32).collect();
        // Quantized heats so ties exercise the stamp tie-break.
        let heats: Vec<f64> = raw_heats.iter().map(|&h| h as f64).collect();
        let path = build_store(n_pages);
        for policy in [CachePolicy::Lru, CachePolicy::MotionAware] {
            let t1 = run_and_check(&path, policy, cap, &reads, &heats)?;
            let t2 = run_and_check(&path, policy, cap, &reads, &heats)?;
            prop_assert_eq!(t1, t2, "eviction order must be run-invariant");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uniform_heat_equals_lru(
        n_pages in 2usize..16,
        cap in 1usize..5,
        raw_reads in prop::collection::vec(0u32..64, 1..100),
    ) {
        let reads: Vec<u32> = raw_reads.iter().map(|r| r % n_pages as u32).collect();
        let heats = vec![1.0f64; n_pages];
        let path = build_store(n_pages);
        let lru = run_and_check(&path, CachePolicy::Lru, cap, &reads, &heats)?;
        let motion = run_and_check(&path, CachePolicy::MotionAware, cap, &reads, &heats)?;
        prop_assert_eq!(lru, motion, "uniform heat must degenerate to LRU");
        std::fs::remove_file(&path).ok();
    }
}
